"""Structural invariants of generated IR, checked across real programs.

A static validator over compiled functions: register indices stay inside
the declared register file, branch targets stay inside the function,
frame offsets stay inside the frame, and the code ends in control
transfer.  Applied to every workload benchmark (the biggest MiniC
programs in the repository) and to the instrumented variants.
"""

import pytest

from repro.machine import isa
from repro.minic.codegen import CompiledFunction
from repro.minic.compiler import CompiledProgram, compile_source
from repro.minic.instrument import apply_code_patch, apply_trap_patch
from repro.workloads import WORKLOADS


def _used_registers(instr):
    """Register operands read or written by one instruction."""
    op = instr[0]
    if op in (isa.LDI, isa.LEAF):
        return [instr[1]]
    if op in (isa.MOV, isa.NEG, isa.FNEG, isa.NOT, isa.BNOT, isa.I2F, isa.F2I):
        return [instr[1], instr[2]]
    if op in (
        isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD,
        isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV,
        isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR,
        isa.EQ, isa.NE, isa.LT, isa.LE, isa.GT, isa.GE,
    ):
        return [instr[1], instr[2], instr[3]]
    if op == isa.LD:
        return [instr[1], instr[2]]
    if op in (isa.ST, isa.TRAP):
        return [instr[1], instr[3]]
    if op == isa.CHK:
        return [instr[1]]
    if op in (isa.BF, isa.BT):
        return [instr[1]]
    if op in (isa.CALL, isa.CALLB):
        regs = list(instr[3])
        if instr[2] is not None:
            regs.append(instr[2])
        return regs
    if op == isa.RET:
        return [] if instr[1] is None else [instr[1]]
    return []


def validate_function(func: CompiledFunction) -> None:
    assert func.code, f"{func.name}: empty body"
    n = len(func.code)
    for index, instr in enumerate(func.code):
        assert instr[0] in isa.OPCODE_NAMES, f"{func.name}@{index}: opcode {instr[0]}"
        for reg in _used_registers(instr):
            assert 0 <= reg < func.n_regs, (
                f"{func.name}@{index}: register r{reg} outside file of {func.n_regs}"
            )
        op = instr[0]
        if op == isa.JMP:
            assert 0 <= instr[1] <= n, f"{func.name}@{index}: jump target {instr[1]}"
        elif op in (isa.BF, isa.BT):
            assert 0 <= instr[2] <= n, f"{func.name}@{index}: branch target {instr[2]}"
        elif op == isa.LEAF:
            assert 0 <= instr[2] < func.frame_size, (
                f"{func.name}@{index}: frame offset {instr[2]} outside "
                f"{func.frame_size}-byte frame"
            )
    # Control must not fall off the end of the function.
    assert func.code[-1][0] in (isa.RET, isa.JMP, isa.HALT), (
        f"{func.name}: falls off the end with {isa.format_instr(func.code[-1])}"
    )
    # Frame variables must not overlap and must fit.
    spans = sorted(
        (var.offset, var.offset + var.size_bytes)
        for var in list(func.params) + list(func.local_vars)
    )
    for (_, end), (begin, _) in zip(spans, spans[1:]):
        assert end <= begin, f"{func.name}: overlapping frame variables"
    if spans:
        assert spans[-1][1] <= func.frame_size


def validate_program(program: CompiledProgram) -> None:
    for func in program.functions:
        validate_function(func)
    for instr in (i for f in program.functions for i in f.code):
        if instr[0] == isa.CALL:
            assert 0 <= instr[1] < len(program.functions)
    # Globals disjoint.
    spans = sorted((var.address, var.end_address) for var in program.globals)
    for (_, end), (begin, _) in zip(spans, spans[1:]):
        assert end <= begin, "overlapping globals"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_ir_is_well_formed(name):
    workload = WORKLOADS[name]
    program = workload.compile(workload.smoke_scale)
    validate_program(program)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("patch", [apply_trap_patch, apply_code_patch])
def test_patched_workload_ir_is_well_formed(name, patch):
    workload = WORKLOADS[name]
    program = patch(workload.compile(workload.smoke_scale))
    validate_program(program)


def test_validator_catches_bad_register():
    program = compile_source("int main() { return 1 + 2; }")
    func = program.functions[0]
    func.code[0] = (isa.LDI, func.n_regs + 5, 0)  # out-of-file register
    with pytest.raises(AssertionError):
        validate_function(func)


def test_validator_catches_bad_branch():
    program = compile_source("int main() { while (1) { } return 0; }")
    func = program.functions[0]
    bad = [list(i) for i in func.code]
    for instr in bad:
        if instr[0] == isa.JMP:
            instr[1] = len(func.code) + 99
    func.code = [tuple(i) for i in bad]
    with pytest.raises(AssertionError):
        validate_function(func)
