"""Tests for the MiniC parser."""

import pytest

from repro.errors import ParseError
from repro.minic import mc_ast as A
from repro.minic.parser import parse


class TestTopLevel:
    def test_global_and_function(self):
        unit = parse("int g; int main() { return 0; }")
        assert len(unit.globals) == 1
        assert len(unit.functions) == 1
        assert unit.functions[0].name == "main"

    def test_forward_declaration_skipped(self):
        unit = parse("int f(int x); int f(int x) { return x; } int main() { return f(1); }")
        assert [func.name for func in unit.functions] == ["f", "main"]

    def test_params(self):
        unit = parse("int f(int a, float *b) { return a; } int main() { return 0; }")
        params = unit.functions[0].params
        assert [p.name for p in params] == ["a", "b"]
        assert params[1].pointer_depth == 1

    def test_void_param_list(self):
        unit = parse("int f(void) { return 1; } int main() { return 0; }")
        assert unit.functions[0].params == []

    def test_void_typed_param_rejected(self):
        with pytest.raises(ParseError):
            parse("int f(void x) { return 1; }")

    def test_global_array_with_initializer(self):
        unit = parse("int a[3] = {1, 2, 3}; int main() { return 0; }")
        decl = unit.globals[0]
        assert decl.array_size == 3
        assert len(decl.init_list) == 3

    def test_too_many_initializers_rejected(self):
        with pytest.raises(ParseError):
            parse("int a[2] = {1, 2, 3}; int main() { return 0; }")

    def test_zero_size_array_rejected(self):
        with pytest.raises(ParseError):
            parse("int a[0]; int main() { return 0; }")


class TestStatements:
    def _body(self, body_src):
        unit = parse("int main() { " + body_src + " }")
        return unit.functions[0].body.statements

    def test_if_else_chain(self):
        (stmt,) = self._body("if (1) return 1; else if (2) return 2; else return 3;")
        assert isinstance(stmt, A.If)
        assert isinstance(stmt.else_body, A.If)

    def test_for_with_empty_clauses(self):
        (stmt,) = self._body("for (;;) break;")
        assert isinstance(stmt, A.For)
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_empty_statement(self):
        (stmt,) = self._body(";")
        assert isinstance(stmt, A.Block) and not stmt.statements

    def test_nested_blocks(self):
        (outer,) = self._body("{ { int x; x = 1; } }")
        assert isinstance(outer, A.Block)

    def test_static_local(self):
        (decl,) = self._body("static int n;")
        assert isinstance(decl, A.VarDecl) and decl.is_static

    def test_unterminated_block_rejected(self):
        with pytest.raises(ParseError):
            parse("int main() { return 0;")


class TestExpressions:
    def _expr(self, expr_src):
        unit = parse(f"int main() {{ return {expr_src}; }}")
        return unit.functions[0].body.statements[0].value

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert isinstance(expr, A.Binary) and expr.op == "+"
        assert isinstance(expr.right, A.Binary) and expr.right.op == "*"

    def test_left_associativity(self):
        expr = self._expr("10 - 3 - 2")
        assert expr.op == "-" and isinstance(expr.left, A.Binary)

    def test_comparison_below_logic(self):
        expr = self._expr("a < b && c > d")
        assert expr.op == "&&"

    def test_shift_between_add_and_compare(self):
        expr = self._expr("1 + 2 << 3 < 4")
        assert expr.op == "<"
        assert expr.left.op == "<<"

    def test_unary_chains(self):
        expr = self._expr("- - x")
        assert isinstance(expr, A.Unary) and isinstance(expr.operand, A.Unary)

    def test_deref_and_index_postfix(self):
        expr = self._expr("*p[2]")
        # '*' binds the whole postfix expression: *(p[2])
        assert isinstance(expr, A.Unary) and expr.op == "*"
        assert isinstance(expr.operand, A.Index)

    def test_chained_assignment_right_associative(self):
        unit = parse("int main() { int a; int b; a = b = 1; return a; }")
        assign = unit.functions[0].body.statements[2].expr
        assert isinstance(assign, A.Assign)
        assert isinstance(assign.value, A.Assign)

    def test_call_with_args(self):
        expr = self._expr("f(1, g(2), x)")
        assert isinstance(expr, A.Call) and len(expr.args) == 3
        assert isinstance(expr.args[1], A.Call)

    def test_missing_paren_rejected(self):
        with pytest.raises(ParseError):
            parse("int main() { return (1 + 2; }")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse("int main() { return 1 }")

    def test_stray_token_rejected(self):
        with pytest.raises(ParseError):
            parse("int main() { return ]; }")


class TestErrorLocations:
    def test_error_reports_line(self):
        with pytest.raises(ParseError) as exc_info:
            parse("int main() {\n  return 1\n}")
        assert "line 3" in str(exc_info.value)
