"""Tests for MiniC semantic analysis: scoping, typing, layout."""

import pytest

from repro.errors import MiniCError, TypeError_
from repro.minic.parser import parse
from repro.minic.semantics import analyze
from repro.minic.mc_types import INT, FLOAT, PointerType


def check(source):
    return analyze(parse(source))


def rejects(source):
    with pytest.raises(TypeError_):
        check(source)


class TestScoping:
    def test_undeclared_identifier(self):
        rejects("int main() { return nope; }")

    def test_duplicate_local(self):
        rejects("int main() { int x; int x; return 0; }")

    def test_duplicate_global(self):
        rejects("int g; int g; int main() { return 0; }")

    def test_duplicate_function(self):
        rejects("int f() { return 1; } int f() { return 2; } int main() { return 0; }")

    def test_shadowing_in_nested_block_allowed(self):
        check("int main() { int x; x = 1; { int x; x = 2; } return x; }")

    def test_local_shadows_global(self):
        unit = check("int x; int main() { int x; x = 1; return x; }")
        assert unit.functions[0].local_vars[0].storage == "frame"

    def test_block_scope_ends(self):
        rejects("int main() { { int y; y = 1; } return y; }")

    def test_param_visible_in_body(self):
        check("int f(int a) { return a; } int main() { return f(1); }")

    def test_builtin_cannot_be_redefined(self):
        rejects("int malloc(int n) { return 0; } int main() { return 0; }")

    def test_main_required(self):
        rejects("int f() { return 1; }")


class TestTyping:
    def test_void_variable_rejected(self):
        # Rejected at parse time (declarator rule), still a MiniC error.
        with pytest.raises(MiniCError):
            check("int main() { void x; return 0; }")

    def test_assign_to_rvalue_rejected(self):
        rejects("int main() { 1 = 2; return 0; }")

    def test_assign_to_array_rejected(self):
        rejects("int main() { int a[3]; int b[3]; a = b; return 0; }")

    def test_index_requires_pointer(self):
        rejects("int main() { int x; return x[0]; }")

    def test_index_must_be_int(self):
        rejects("int main() { int a[3]; float f; f = 0.0; return a[f]; }")

    def test_deref_requires_pointer(self):
        rejects("int main() { int x; return *x; }")

    def test_addr_of_rvalue_rejected(self):
        rejects("int main() { int *p; p = &(1 + 2); return 0; }")

    def test_mod_requires_ints(self):
        rejects("int main() { float f; f = 1.0; return f % 2; }")

    def test_shift_requires_ints(self):
        rejects("int main() { return 1.5 << 2; }")

    def test_call_arity_checked(self):
        rejects("int f(int a) { return a; } int main() { return f(1, 2); }")

    def test_call_to_undefined(self):
        rejects("int main() { return mystery(); }")

    def test_return_value_in_void_function(self):
        rejects("void f() { return 1; } int main() { return 0; }")

    def test_missing_return_value(self):
        rejects("int f() { return; } int main() { return 0; }")

    def test_break_outside_loop(self):
        rejects("int main() { break; return 0; }")

    def test_continue_outside_loop(self):
        rejects("int main() { continue; return 0; }")

    def test_brace_initializer_on_local_rejected(self):
        rejects("int main() { int a[2] = {1, 2}; return 0; }")

    def test_nonconstant_global_initializer_rejected(self):
        rejects("int f() { return 1; } int g = f(); int main() { return 0; }")

    def test_kr_pointer_int_mixing_allowed(self):
        # 1992 C: storing pointers in int fields and vice versa.
        check("int main() { int x; int *p; p = &x; x = p; p = x; return 0; }")

    def test_numeric_conversion_allowed(self):
        check("int main() { float f; int i; f = 1; i = f; return i; }")


class TestLayout:
    def test_frame_offsets_disjoint(self):
        unit = check("int main() { int a; int b; int c[4]; int d; return 0; }")
        func = unit.functions[0]
        spans = [
            (var.offset, var.offset + var.size_bytes) for var in func.local_vars
        ]
        spans.sort()
        for (_, end), (begin, _) in zip(spans, spans[1:]):
            assert end <= begin

    def test_frame_size_covers_locals(self):
        unit = check("int main() { int a; int buffer[10]; return 0; }")
        func = unit.functions[0]
        assert func.frame_size >= 44

    def test_frame_rounded_to_8(self):
        unit = check("int main() { int a; return 0; }")
        assert unit.functions[0].frame_size % 8 == 0

    def test_params_precede_locals(self):
        unit = check("int f(int p, int q) { int x; return x; } int main() { return 0; }")
        func = unit.functions[0]
        assert [p.offset for p in func.params] == [0, 4]
        assert func.local_vars[0].offset == 8

    def test_globals_get_distinct_addresses(self):
        unit = check("int a; int b[5]; float c; int main() { return 0; }")
        spans = [(g.address, g.end_address) for g in unit.globals]
        spans.sort()
        for (_, end), (begin, _) in zip(spans, spans[1:]):
            assert end <= begin

    def test_static_lives_in_global_segment(self):
        unit = check("int f() { static int n; return n; } int main() { return 0; }")
        static = unit.functions[0].static_vars[0]
        assert static.owner_function == "f"
        assert static.address >= 0x0010_0000

    def test_types_annotated_on_expressions(self):
        unit = check("int main() { float f; f = 1.5; return f > 1.0; }")
        ret = unit.functions[0].definition.body.statements[2]
        assert ret.value.ctype == INT

    def test_pointer_type_resolution(self):
        unit = check("int main() { int x; int *p; p = &x; return *p; }")
        assign = unit.functions[0].definition.body.statements[2].expr
        assert assign.value.ctype == PointerType(INT)
