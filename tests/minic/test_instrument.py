"""Tests for the instrumentation passes: trap patching and code patching."""

import pytest

from repro.machine import Cpu, Memory, isa, load_program
from repro.minic.compiler import compile_source
from repro.minic.instrument import (
    apply_code_patch,
    apply_trap_patch,
    code_expansion_estimate,
    write_instruction_stats,
)
from repro.minic.runtime import Runtime

SOURCE = """
int g;
int accumulate(int *a, int n) {
  int i;
  int s;
  s = 0;
  for (i = 0; i < n; i = i + 1) {
    s = s + a[i];
  }
  return s;
}
int main() {
  int data[6];
  int i;
  for (i = 0; i < 6; i = i + 1) data[i] = i * i;
  g = accumulate(data, 6);
  return g;
}
"""


def _execute(program):
    image = load_program(program)
    cpu = Cpu(Memory())
    runtime = Runtime(cpu)
    runtime.install()
    cpu.attach(image)

    # Patched programs need handlers; provide the trivial ones.
    from repro.machine.traps import TrapKind
    from repro.sim_os import Signal, SimOs

    os = SimOs(cpu)
    os.sigaction(Signal.SIGTRAP, lambda frame, c: os.emulate(frame, c))
    cpu.check_hook = lambda addr, pc, c: None
    state = cpu.run("main")
    return state


@pytest.fixture
def program():
    return compile_source(SOURCE, "instr-test")


class TestTrapPatch:
    def test_no_stores_remain(self, program):
        patched = apply_trap_patch(program)
        for func in patched.functions:
            assert all(instr[0] != isa.ST for instr in func.code)

    def test_one_for_one_replacement(self, program):
        patched = apply_trap_patch(program)
        for before, after in zip(program.functions, patched.functions):
            assert len(before.code) == len(after.code)
            for b, a in zip(before.code, after.code):
                if b[0] == isa.ST:
                    assert a == (isa.TRAP, b[1], b[2], b[3])
                else:
                    assert a == b

    def test_original_program_unmodified(self, program):
        stores_before = sum(
            1 for f in program.functions for i in f.code if i[0] == isa.ST
        )
        apply_trap_patch(program)
        stores_after = sum(
            1 for f in program.functions for i in f.code if i[0] == isa.ST
        )
        assert stores_before == stores_after > 0

    def test_patched_program_computes_same_result(self, program):
        plain = _execute(program)
        patched = _execute(apply_trap_patch(program))
        assert patched.exit_value == plain.exit_value

    def test_every_write_traps(self, program):
        from repro.machine.traps import TrapKind

        plain = _execute(program)
        patched = _execute(apply_trap_patch(program))
        assert patched.trap_counts.get(TrapKind.TRAP_INSTR, 0) == plain.stores


class TestCodePatch:
    def test_chk_precedes_every_store(self, program):
        patched = apply_code_patch(program)
        for func in patched.functions:
            for index, instr in enumerate(func.code):
                if instr[0] == isa.ST:
                    previous = func.code[index - 1]
                    assert previous == (isa.CHK, instr[1], instr[2])

    def test_branches_land_on_check_not_store(self, program):
        patched = apply_code_patch(program)
        for func in patched.functions:
            for instr in func.code:
                if instr[0] == isa.JMP:
                    assert func.code[instr[1]][0] != isa.ST
                elif instr[0] in (isa.BF, isa.BT):
                    assert func.code[instr[2]][0] != isa.ST

    def test_patched_program_computes_same_result(self, program):
        plain = _execute(program)
        patched = _execute(apply_code_patch(program))
        assert patched.exit_value == plain.exit_value

    def test_every_store_checked(self, program):
        plain = _execute(program)
        checked = []
        patched_program = apply_code_patch(program)
        image = load_program(patched_program)
        cpu = Cpu(Memory())
        runtime = Runtime(cpu)
        runtime.install()
        cpu.attach(image)
        cpu.check_hook = lambda addr, pc, c: checked.append(addr)
        state = cpu.run("main")
        assert len(checked) == plain.stores == state.stores


class TestExpansionEstimate:
    def test_stats_count_stores(self, program):
        stats = write_instruction_stats(program)
        direct = sum(1 for f in program.functions for i in f.code if i[0] == isa.ST)
        assert stats.write_instructions == direct
        assert stats.total_instructions == program.total_instructions()

    def test_expansion_formula(self, program):
        stats = write_instruction_stats(program)
        assert code_expansion_estimate(program) == pytest.approx(
            2 * stats.write_fraction
        )

    def test_expansion_in_plausible_range(self, program):
        # The paper found 12-15% for real programs; a toy program lands
        # in the same broad regime (writes are 5-15% of instructions).
        expansion = code_expansion_estimate(program)
        assert 0.05 < expansion < 0.40

    def test_empty_program_zero_expansion(self):
        trivial = compile_source("int main() { return 0; }")
        stats = write_instruction_stats(trivial)
        assert stats.write_instructions == 0
        assert stats.expansion() == 0.0
