"""Whole-program behavioral tests: classic algorithms in MiniC.

Each test is a complete program with a known answer — the kind of
coverage that catches codegen bugs no unit test of a single construct
would (register pressure, loop nests, recursion + heap interplay).
"""

from tests.conftest import run_minic


class TestSorting:
    def test_insertion_sort(self):
        source = """
        int data[8];
        int main() {
          int i; int j; int key;
          int seed;
          seed = 13;
          for (i = 0; i < 8; i++) {
            seed = (seed * 31 + 7) % 101;
            data[i] = seed;
          }
          for (i = 1; i < 8; i++) {
            key = data[i];
            j = i - 1;
            while (j >= 0 && data[j] > key) {
              data[j + 1] = data[j];
              j--;
            }
            data[j + 1] = key;
          }
          for (i = 1; i < 8; i++) {
            if (data[i - 1] > data[i]) return -1;
          }
          return data[0] * 1000 + data[7];
        }
        """
        result = run_minic(source)
        assert result > 0
        low, high = result // 1000, result % 1000
        assert low <= high

    def test_quicksort_recursive(self):
        source = """
        int a[12];
        void swap(int i, int j) {
          int t;
          t = a[i]; a[i] = a[j]; a[j] = t;
        }
        void qsort_range(int lo, int hi) {
          int pivot; int i; int j;
          if (lo >= hi) return;
          pivot = a[(lo + hi) / 2];
          i = lo; j = hi;
          while (i <= j) {
            while (a[i] < pivot) i++;
            while (a[j] > pivot) j--;
            if (i <= j) { swap(i, j); i++; j--; }
          }
          qsort_range(lo, j);
          qsort_range(i, hi);
        }
        int main() {
          int i; int sorted;
          for (i = 0; i < 12; i++) a[i] = (i * 7919 + 13) % 97;
          qsort_range(0, 11);
          sorted = 1;
          for (i = 1; i < 12; i++) {
            if (a[i - 1] > a[i]) sorted = 0;
          }
          return sorted;
        }
        """
        assert run_minic(source) == 1


class TestNumberTheory:
    def test_euclid_gcd(self):
        source = """
        int gcd(int a, int b) {
          while (b != 0) {
            int t;
            t = b;
            b = a % b;
            a = t;
          }
          return a;
        }
        int main() { return gcd(1071, 462) * 100 + gcd(17, 5); }
        """
        assert run_minic(source) == 21 * 100 + 1

    def test_sieve_of_eratosthenes(self):
        source = """
        int composite[50];
        int main() {
          int i; int j; int count;
          for (i = 2; i * i < 50; i++) {
            if (!composite[i]) {
              for (j = i * i; j < 50; j += i) composite[j] = 1;
            }
          }
          count = 0;
          for (i = 2; i < 50; i++) {
            if (!composite[i]) count++;
          }
          return count;   /* 15 primes below 50 */
        }
        """
        assert run_minic(source) == 15

    def test_collatz_steps(self):
        source = """
        int main() {
          int n; int steps;
          n = 27;
          steps = 0;
          while (n != 1) {
            n = n % 2 == 0 ? n / 2 : 3 * n + 1;
            steps++;
          }
          return steps;
        }
        """
        assert run_minic(source) == 111


class TestDataStructures:
    def test_singly_linked_list_on_heap(self):
        source = """
        /* node: [0] value, [1] next */
        int *push(int *head, int value) {
          int *node;
          node = malloc(8);
          node[0] = value;
          node[1] = head;
          return node;
        }
        int sum_and_free(int *head) {
          int total;
          int *next;
          total = 0;
          while (head != 0) {
            total += head[0];
            next = head[1];
            free(head);
            head = next;
          }
          return total;
        }
        int main() {
          int *list; int i;
          list = 0;
          for (i = 1; i <= 10; i++) list = push(list, i * i);
          return sum_and_free(list);
        }
        """
        assert run_minic(source) == sum(i * i for i in range(1, 11))

    def test_binary_search(self):
        source = """
        int table[16];
        int bsearch(int want) {
          int lo; int hi; int mid;
          lo = 0; hi = 15;
          while (lo <= hi) {
            mid = (lo + hi) / 2;
            if (table[mid] == want) return mid;
            if (table[mid] < want) lo = mid + 1;
            else hi = mid - 1;
          }
          return -1;
        }
        int main() {
          int i;
          for (i = 0; i < 16; i++) table[i] = i * 3 + 1;
          return bsearch(1) * 10000 + bsearch(46) * 100 + (bsearch(47) + 1);
        }
        """
        assert run_minic(source) == 0 * 10000 + 15 * 100 + 0

    def test_ring_buffer_with_statics(self):
        source = """
        int ring_put(int v) {
          static int buffer[4];
          static int head;
          static int count;
          int dropped;
          dropped = 0;
          if (count == 4) dropped = buffer[head % 4];
          buffer[(head + count) % 4] = v;
          if (count == 4) head++;
          else count++;
          return dropped;
        }
        int main() {
          int i; int dropped_sum;
          dropped_sum = 0;
          for (i = 1; i <= 7; i++) dropped_sum += ring_put(i);
          return dropped_sum;   /* 1 + 2 + 3 dropped */
        }
        """
        assert run_minic(source) == 6


class TestNumerics:
    def test_matrix_multiply(self):
        source = """
        float a[9];
        float b[9];
        float c[9];
        void matmul() {
          int i; int j; int k;
          for (i = 0; i < 3; i++) {
            for (j = 0; j < 3; j++) {
              float acc;
              acc = 0.0;
              for (k = 0; k < 3; k++) acc += a[i * 3 + k] * b[k * 3 + j];
              c[i * 3 + j] = acc;
            }
          }
        }
        int main() {
          int i;
          for (i = 0; i < 9; i++) { a[i] = i + 1; b[i] = i % 3 == i / 3 ? 1.0 : 0.0; }
          matmul();   /* b is the identity: c == a */
          for (i = 0; i < 9; i++) {
            if (c[i] != a[i]) return -1;
          }
          return c[8];
        }
        """
        assert run_minic(source) == 9

    def test_newton_sqrt(self):
        source = """
        float my_sqrt(float x) {
          float guess;
          int i;
          guess = x / 2.0;
          for (i = 0; i < 20; i++) guess = (guess + x / guess) / 2.0;
          return guess;
        }
        int main() {
          float r;
          r = my_sqrt(1764.0);    /* 42 */
          return r * 100.0;
        }
        """
        assert run_minic(source) == 4200

    def test_horner_polynomial(self):
        source = """
        int coeffs[4] = {2, -6, 2, -1};   /* 2x^3 - 6x^2 + 2x - 1 */
        int eval(int x) {
          int acc; int i;
          acc = 0;
          for (i = 0; i < 4; i++) acc = acc * x + coeffs[i];
          return acc;
        }
        int main() { return eval(3); }
        """
        assert run_minic(source) == 2 * 27 - 6 * 9 + 2 * 3 - 1

    def test_fixed_point_iteration_convergence(self):
        source = """
        int main() {
          float x;
          float prev;
          int rounds;
          x = 1.0;
          prev = 0.0;
          rounds = 0;
          while (fabs(x - prev) > 0.000001 && rounds < 100) {
            prev = x;
            x = exp(-x);        /* converges to the omega constant */
            rounds++;
          }
          return x * 1000000.0;
        }
        """
        assert abs(run_minic(source) - 567143) <= 1


class TestStringyInts:
    def test_reverse_digits(self):
        source = """
        int main() {
          int n; int out;
          n = 123456;
          out = 0;
          while (n > 0) {
            out = out * 10 + n % 10;
            n /= 10;
          }
          return out;
        }
        """
        assert run_minic(source) == 654321

    def test_roman_numeral_value(self):
        source = """
        /* MCMXCII == 1992, the paper's year */
        int digits[7] = {1000, 100, 1000, 10, 100, 1, 1};
        int main() {
          int total; int i;
          total = 0;
          for (i = 0; i < 7; i++) {
            total += i + 1 < 7 && digits[i] < digits[i + 1]
                       ? -digits[i] : digits[i];
          }
          return total;
        }
        """
        assert run_minic(source) == 1992
