"""Differential fuzzing of the MiniC toolchain.

Two oracles over randomly generated programs:

1. **Semantics oracle** — every generated MiniC program is also emitted
   as Python with C-exact integer semantics (truncating division,
   dividend-sign remainder, 0/1 comparisons); compiled-and-simulated
   results must match the Python evaluation exactly.

2. **Instrumentation equivalence** — the same program run plain,
   trap-patched, and code-patched must produce identical results and
   identical store counts (the rewrites may never change observable
   behaviour).

The generator covers assignments, compound assignment, ++/--, ternaries,
nested ifs, and bounded for-loops, over int variables and an int array.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.machine import Cpu, Memory, load_program
from repro.machine.cpu import _c_div, _c_mod
from repro.minic.compiler import compile_source
from repro.minic.instrument import apply_code_patch, apply_trap_patch
from repro.minic.runtime import Runtime
from repro.sim_os import Signal, SimOs

VARS = ("a", "b", "c", "d")
ARRAY = "arr"
ARRAY_LEN = 5


class _Gen:
    """Builds a MiniC body and a semantically identical Python body."""

    def __init__(self, draw) -> None:
        self.draw = draw
        self.c_lines = []
        self.py_lines = []
        self.depth = 0
        self.loop_id = 0

    # -- emission ----------------------------------------------------------

    def emit(self, c_text: str, py_text: str) -> None:
        pad = "  " * (self.depth + 1)
        py_pad = "    " * (self.depth + 1)
        self.c_lines.append(pad + c_text)
        self.py_lines.append(py_pad + py_text)

    # -- expressions ----------------------------------------------------------

    def expr(self, depth: int = 0):
        """Returns (c_text, py_text); both evaluate to the same int."""
        choice = self.draw(st.integers(0, 7 if depth < 2 else 2))
        if choice == 0:
            value = self.draw(st.integers(-30, 30))
            return (str(value) if value >= 0 else f"({value})",) * 2
        if choice == 1:
            name = self.draw(st.sampled_from(VARS))
            return name, name
        if choice == 2:
            index = self.draw(st.integers(0, ARRAY_LEN - 1))
            return f"{ARRAY}[{index}]", f"{ARRAY}[{index}]"
        if choice in (3, 4):
            op = self.draw(st.sampled_from(["+", "-", "*"]))
            lc, lp = self.expr(depth + 1)
            rc, rp = self.expr(depth + 1)
            return f"({lc} {op} {rc})", f"({lp} {op} {rp})"
        if choice == 5:
            # Division/remainder by a nonzero constant, C semantics.
            op = self.draw(st.sampled_from(["/", "%"]))
            lc, lp = self.expr(depth + 1)
            denom = self.draw(st.integers(1, 9))
            fn = "_c_div" if op == "/" else "_c_mod"
            return f"({lc} {op} {denom})", f"{fn}({lp}, {denom})"
        if choice == 6:
            op = self.draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
            lc, lp = self.expr(depth + 1)
            rc, rp = self.expr(depth + 1)
            return f"({lc} {op} {rc})", f"(1 if {lp} {op} {rp} else 0)"
        cc, cp = self.expr(depth + 1)
        tc, tp = self.expr(depth + 1)
        ec, ep = self.expr(depth + 1)
        return (
            f"({cc} ? {tc} : {ec})",
            f"({tp} if {cp} != 0 else {ep})",
        )

    # -- statements ----------------------------------------------------------

    def statement(self) -> None:
        choice = self.draw(st.integers(0, 6 if self.depth < 2 else 3))
        if choice in (0, 1):
            target = self.draw(st.sampled_from(VARS))
            c_expr, py_expr = self.expr()
            self.emit(f"{target} = {c_expr};", f"{target} = {py_expr}")
        elif choice == 2:
            target = self.draw(st.sampled_from(VARS))
            op = self.draw(st.sampled_from(["+", "-", "*"]))
            c_expr, py_expr = self.expr()
            self.emit(f"{target} {op}= {c_expr};", f"{target} = {target} {op} ({py_expr})")
        elif choice == 3:
            target = self.draw(st.sampled_from(VARS))
            op = self.draw(st.sampled_from(["++", "--"]))
            sign = "+" if op == "++" else "-"
            prefix = self.draw(st.booleans())
            c_text = f"{op}{target};" if prefix else f"{target}{op};"
            self.emit(c_text, f"{target} = {target} {sign} 1")
        elif choice == 4:
            index = self.draw(st.integers(0, ARRAY_LEN - 1))
            c_expr, py_expr = self.expr()
            self.emit(f"{ARRAY}[{index}] = {c_expr};", f"{ARRAY}[{index}] = {py_expr}")
        elif choice == 5:
            c_cond, py_cond = self.expr()
            self.emit(f"if ({c_cond}) {{", f"if ({py_cond}) != 0:")
            self.depth += 1
            self.block(max_statements=3)
            self.depth -= 1
            self.emit("}", "pass")
        else:
            count = self.draw(st.integers(1, 4))
            loop_var = f"i{self.loop_id}"
            self.loop_id += 1
            self.emit(
                f"for ({loop_var} = 0; {loop_var} < {count}; {loop_var}++) {{",
                f"for {loop_var} in range({count}):",
            )
            self.depth += 1
            self.block(max_statements=3)
            self.depth -= 1
            self.emit("}", "pass")

    def block(self, max_statements: int) -> None:
        for _ in range(self.draw(st.integers(1, max_statements))):
            self.statement()


def _generate(draw):
    gen = _Gen(draw)
    init = [draw(st.integers(-10, 10)) for _ in VARS]
    gen.block(max_statements=8)
    n_loops = gen.loop_id

    decls = "\n".join(f"  int {name};" for name in VARS)
    loop_decls = "\n".join(f"  int i{index};" for index in range(n_loops))
    inits = "\n".join(f"  {name} = {value};" for name, value in zip(VARS, init))
    body = "\n".join(gen.c_lines)
    result = " + ".join(f"{name} * {weight}" for name, weight in zip(VARS, (1, 7, 13, 31)))
    array_sum = " + ".join(f"{ARRAY}[{i}] * {i + 3}" for i in range(ARRAY_LEN))
    c_source = f"""
int {ARRAY}[{ARRAY_LEN}];
int main() {{
{decls}
{loop_decls}
{inits}
{body}
  return ({result} + {array_sum}) & 1048575;
}}
"""
    py_body = "\n".join(gen.py_lines) or "    pass"
    py_inits = "\n".join(
        f"    {name} = {value}" for name, value in zip(VARS, init)
    )
    py_source = f"""
def run(_c_div, _c_mod):
    {ARRAY} = [0] * {ARRAY_LEN}
{py_inits}
{py_body}
    return ({result} + {array_sum}) & 1048575
"""
    return c_source, py_source


def _run_compiled(program) -> tuple:
    image = load_program(program)
    cpu = Cpu(Memory())
    runtime = Runtime(cpu)
    runtime.install()
    cpu.attach(image)
    os = SimOs(cpu)
    os.sigaction(Signal.SIGTRAP, lambda frame, c: os.emulate(frame, c))
    cpu.check_hook = lambda addr, pc, c: None
    state = cpu.run("main", max_instructions=2_000_000)
    return state.exit_value, state.stores


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_compiler_matches_python_oracle(data):
    c_source, py_source = _generate(data.draw)
    namespace = {}
    exec(py_source, namespace)  # noqa: S102 - test-local generated code
    expected = namespace["run"](_c_div, _c_mod)

    program = compile_source(c_source, "fuzz")
    got, _stores = _run_compiled(program)
    assert got == expected, f"\n--- C ---\n{c_source}\n--- py ---\n{py_source}"


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_instrumentation_preserves_behaviour(data):
    c_source, _py_source = _generate(data.draw)
    program = compile_source(c_source, "fuzz")
    plain_result, plain_stores = _run_compiled(program)
    trap_result, trap_stores = _run_compiled(apply_trap_patch(program))
    code_result, code_stores = _run_compiled(apply_code_patch(program))
    assert trap_result == plain_result
    assert code_result == plain_result
    assert trap_stores == plain_stores
    assert code_stores == plain_stores
