"""Tests for the MiniC lexer."""

import pytest

from repro.errors import LexError
from repro.minic.lexer import tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def values(source):
    return [token.value for token in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_yields_eof(self):
        assert kinds("") == ["eof"]

    def test_identifiers_and_keywords(self):
        assert kinds("int x while whale")[:4] == ["int", "ident", "while", "ident"]

    def test_underscore_identifiers(self):
        tokens = tokenize("_foo bar_baz x_1")
        assert [t.value for t in tokens[:-1]] == ["_foo", "bar_baz", "x_1"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]


class TestNumbers:
    def test_decimal_int(self):
        assert values("12345") == [12345]

    def test_hex_int(self):
        assert values("0xFF 0x10") == [255, 16]

    def test_float_literal(self):
        assert values("3.25") == [3.25]

    def test_float_with_exponent(self):
        assert values("1e3 2.5e-2") == [1000.0, 0.025]

    def test_int_then_dot_not_float_without_digit(self):
        # "3." is lexed as int 3 then an unexpected '.', which errors.
        with pytest.raises(LexError):
            tokenize("3.")

    def test_bad_hex_rejected(self):
        with pytest.raises(LexError):
            tokenize("0x")


class TestCharLiterals:
    def test_plain_char(self):
        assert values("'a'") == [97]

    def test_escapes(self):
        assert values(r"'\n' '\t' '\0' '\\'") == [10, 9, 0, 92]

    def test_unterminated_rejected(self):
        with pytest.raises(LexError):
            tokenize("'a")

    def test_bad_escape_rejected(self):
        with pytest.raises(LexError):
            tokenize(r"'\q'")


class TestOperators:
    def test_multi_char_operators_greedy(self):
        assert kinds("<= >= == != && || << >>")[:-1] == [
            "<=", ">=", "==", "!=", "&&", "||", "<<", ">>",
        ]

    def test_adjacent_single_chars(self):
        assert kinds("a=b+c;")[:-1] == ["ident", "=", "ident", "+", "ident", ";"]

    def test_ambiguous_less_then_assign(self):
        # "<=" must not lex as "<", "="
        assert kinds("a<=b")[1] == "<="

    def test_unknown_character_rejected(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\nb")[:-1] == ["ident", "ident"]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b")[:-1] == ["ident", "ident"]

    def test_block_comment_tracks_lines(self):
        tokens = tokenize("/* one\ntwo */ x")
        assert tokens[0].line == 2

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_division_not_comment(self):
        assert kinds("a / b")[1] == "/"
