"""Tests for the C-flavored language extensions: compound assignment,
increment/decrement, do-while, and the ternary operator."""

import pytest

from repro.errors import MiniCError, TypeError_
from repro.minic.parser import parse
from repro.minic.semantics import analyze

from tests.conftest import run_minic


def rejects(source):
    with pytest.raises((TypeError_, MiniCError)):
        analyze(parse(source))


class TestCompoundAssignment:
    @pytest.mark.parametrize(
        "op,start,operand,expected",
        [
            ("+=", 10, 3, 13),
            ("-=", 10, 3, 7),
            ("*=", 10, 3, 30),
            ("/=", 10, 3, 3),
            ("%=", 10, 3, 1),
        ],
    )
    def test_int_ops(self, op, start, operand, expected):
        source = f"int main() {{ int x; x = {start}; x {op} {operand}; return x; }}"
        assert run_minic(source) == expected

    def test_value_of_expression(self):
        assert run_minic("int main() { int x; x = 5; return (x += 2) * 10; }") == 70

    def test_float_compound(self):
        source = "int main() { float f; f = 2.0; f *= 2.5; return f; }"
        assert run_minic(source) == 5

    def test_int_target_float_operand_truncates_sum(self):
        """C computes in float and truncates on store: 1 += -0.5 -> 0."""
        source = "int main() { int x; x = 1; x += -0.5; return x; }"
        assert run_minic(source) == 0

    def test_pointer_compound(self):
        source = """
        int main() {
          int a[5]; int *p;
          a[3] = 42;
          p = a;
          p += 3;
          return *p;
        }
        """
        assert run_minic(source) == 42

    def test_address_evaluated_once(self):
        """`a[next()] += 1` must call next() exactly once."""
        source = """
        int calls;
        int next() { calls = calls + 1; return 2; }
        int main() {
          int a[4];
          a[2] = 10;
          a[next()] += 1;
          return calls * 100 + a[2];
        }
        """
        assert run_minic(source) == 111

    def test_on_global_and_deref(self):
        source = """
        int g;
        int main() { int *p; g = 4; p = &g; *p += 6; return g; }
        """
        assert run_minic(source) == 10

    def test_mod_on_float_rejected(self):
        rejects("int main() { float f; f = 1.0; f %= 2; return 0; }")

    def test_pointer_mul_rejected(self):
        rejects("int main() { int a[2]; int *p; p = a; p *= 2; return 0; }")

    def test_rvalue_target_rejected(self):
        rejects("int main() { 1 += 2; return 0; }")


class TestIncDec:
    def test_postfix_returns_old(self):
        assert run_minic("int main() { int i; i = 5; return i++ * 10 + i; }") == 56

    def test_prefix_returns_new(self):
        assert run_minic("int main() { int i; i = 5; return ++i * 10 + i; }") == 66

    def test_decrement(self):
        assert run_minic("int main() { int i; i = 5; i--; --i; return i; }") == 3

    def test_pointer_increment_walks_words(self):
        source = """
        int main() {
          int a[3]; int *p; int s;
          a[0] = 1; a[1] = 2; a[2] = 4;
          s = 0;
          p = a;
          s += *p++;
          s += *p++;
          s += *p;
          return s;
        }
        """
        assert run_minic(source) == 7

    def test_float_increment(self):
        assert run_minic("int main() { float f; f = 1.25; f++; return f * 4.0; }") == 9

    def test_in_for_loop_idiom(self):
        source = """
        int main() {
          int i; int s;
          s = 0;
          for (i = 0; i < 5; i++) s += i;
          return s;
        }
        """
        assert run_minic(source) == 10

    def test_array_element(self):
        source = "int main() { int a[2]; a[1] = 7; a[1]++; return a[1]; }"
        assert run_minic(source) == 8

    def test_rvalue_rejected(self):
        rejects("int main() { return 5++; }")

    def test_writes_visible_to_data_breakpoints(self):
        """x++ is a store like any other; the WMS must see it."""
        from repro.debugger import Debugger

        source = "int g; int main() { g++; g++; return g; }"
        debugger = Debugger.from_source(source, strategy="code")
        watch = debugger.watch_global("g")
        outcome = debugger.run()
        assert outcome.finished
        assert [event.value for event in watch.events] == [1, 2]


class TestDoWhile:
    def test_executes_body_at_least_once(self):
        source = """
        int main() {
          int n; int count;
          n = 0; count = 0;
          do { count++; } while (n > 0);
          return count;
        }
        """
        assert run_minic(source) == 1

    def test_loops_until_false(self):
        source = """
        int main() {
          int i;
          i = 0;
          do { i++; } while (i < 7);
          return i;
        }
        """
        assert run_minic(source) == 7

    def test_break_and_continue(self):
        source = """
        int main() {
          int i; int s;
          i = 0; s = 0;
          do {
            i++;
            if (i == 3) continue;
            if (i == 6) break;
            s += i;
          } while (i < 100);
          return s;
        }
        """
        assert run_minic(source) == 1 + 2 + 4 + 5

    def test_missing_semicolon_rejected(self):
        with pytest.raises(MiniCError):
            parse("int main() { do { } while (1) return 0; }")


class TestTernary:
    def test_selects_arm(self):
        assert run_minic("int main() { return 1 ? 10 : 20; }") == 10
        assert run_minic("int main() { return 0 ? 10 : 20; }") == 20

    def test_only_taken_arm_evaluated(self):
        source = """
        int side;
        int mark(int v) { side = side + 1; return v; }
        int main() {
          int r;
          r = 1 ? 5 : mark(9);
          return side * 10 + r;
        }
        """
        assert run_minic(source) == 5

    def test_nested_right_associative(self):
        source = "int main() { int x; x = 2; return x == 1 ? 10 : x == 2 ? 20 : 30; }"
        assert run_minic(source) == 20

    def test_mixed_numeric_promotes_to_float(self):
        source = "int main() { float f; f = 1 ? 1 : 2.5; return f * 2.0; }"
        assert run_minic(source) == 2

    def test_in_condition_position(self):
        source = "int main() { int a; a = 7; if (a > 5 ? 1 : 0) return 1; return 0; }"
        assert run_minic(source) == 1

    def test_incompatible_arms_rejected(self):
        rejects("void v() { } int main() { return 1 ? v() : 2; }")


class TestInteraction:
    def test_everything_together(self):
        source = """
        int total;
        int bump(int v) { total += v; return total; }
        int main() {
          int i;
          int best;
          best = 0;
          i = 0;
          do {
            int now;
            now = bump(i++);
            best = now > best ? now : best;
          } while (i < 6);
          return best;
        }
        """
        assert run_minic(source) == 15

    def test_tracer_counts_compound_stores(self):
        """Each compound assignment is one write event in the trace."""
        from repro.minic.compiler import compile_source
        from repro.trace import trace_program

        source = """
        int g;
        int main() {
          int i;
          for (i = 0; i < 4; i++) g += i;
          return g;
        }
        """
        trace, registry, state = trace_program(compile_source(source))
        assert trace.meta.n_writes == state.stores
        # i init + 4 x (g +=, i++) + nothing else on globals/locals
        assert state.stores == 1 + 8
