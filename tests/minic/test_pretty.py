"""Tests for the AST/IR pretty-printers."""

import pytest

from repro.minic.compiler import compile_source
from repro.minic.parser import parse
from repro.minic.pretty import dump_ast, format_function, format_program

SOURCE = """
int g = 3;
int table[2] = {1, 2};

int f(int x) {
  static int calls;
  calls++;
  return x > 0 ? x : -x;
}

int main() {
  int i;
  do { g += f(i++); } while (i < 4);
  for (; g < 100; g *= 2) { }
  while (0) break;
  if (g) continue_free();
  return g;
}

void continue_free() { }
"""


class TestDumpAst:
    def test_every_construct_named(self):
        text = dump_ast(parse(SOURCE))
        for marker in (
            "TranslationUnit", "FuncDef f(int x) -> int", "VarDecl int g",
            "VarDecl static int calls", "Ternary", "IncDec '++' (postfix)",
            "CompoundAssign '+='", "DoWhile", "For", "While", "Break",
            "If", "Call continue_free", "Return", "Unary '-'",
        ):
            assert marker in text, marker

    def test_indentation_reflects_nesting(self):
        text = dump_ast(parse("int main() { if (1) { if (2) return 3; } return 0; }"))
        lines = text.splitlines()
        first_if = next(l for l in lines if l.strip() == "If")
        second_if = next(l for l in lines if l.strip() == "If" and l != first_if)
        assert len(second_if) - len(second_if.lstrip()) > len(first_if) - len(first_if.lstrip())

    def test_subtree_dump(self):
        unit = parse("int main() { return 1 + 2; }")
        text = dump_ast(unit.functions[0].body.statements[0])
        assert text.splitlines()[0] == "Return"


class TestFormatFunction:
    def test_header_and_variables(self):
        program = compile_source(SOURCE, "pp")
        text = format_function(program.function("f"))
        assert text.startswith("f:")
        assert "param x: int at fp+0" in text
        assert "static calls: int" in text

    def test_every_instruction_listed(self):
        program = compile_source(SOURCE, "pp")
        func = program.function("main")
        text = format_function(func)
        body_lines = [l for l in text.splitlines() if l.startswith("  ") and not l.startswith("    ;")]
        assert len(body_lines) == len(func.code)

    def test_line_annotations_present(self):
        program = compile_source(SOURCE, "pp")
        assert "; line" in format_function(program.function("main"))


class TestFormatProgram:
    def test_lists_globals_and_functions(self):
        program = compile_source(SOURCE, "pp")
        text = format_program(program)
        assert "; global g: int" in text
        assert "(static of f)" in text
        assert "main:" in text
        assert f"{program.total_instructions()} instructions" in text
