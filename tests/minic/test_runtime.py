"""Tests for the MiniC runtime: heap allocator and builtins."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MiniCRuntimeError
from repro.machine import Cpu, Memory
from repro.minic.runtime import HeapAllocator, Runtime

from tests.conftest import MiniCRunner


@pytest.fixture
def heap():
    return HeapAllocator(Memory())


class TestMalloc:
    def test_returns_word_aligned(self, heap):
        for size in (1, 3, 4, 5, 17):
            assert heap.malloc(size) % 4 == 0

    def test_zero_request_returns_null(self, heap):
        assert heap.malloc(0) == 0
        assert heap.malloc(-8) == 0

    def test_blocks_disjoint(self, heap):
        a = heap.malloc(16)
        b = heap.malloc(16)
        assert abs(a - b) >= 16

    def test_tracks_allocations(self, heap):
        address = heap.malloc(10)
        assert heap.allocations[address] == 12  # rounded up
        assert heap.live_bytes() == 12

    def test_exhaustion_raises(self, heap):
        with pytest.raises(MiniCRuntimeError):
            heap.malloc(heap.layout.heap_limit - heap.layout.heap_base + 4)


class TestFree:
    def test_free_null_is_noop(self, heap):
        heap.free(0)

    def test_free_unallocated_raises(self, heap):
        with pytest.raises(MiniCRuntimeError):
            heap.free(0x0020_0000)

    def test_double_free_raises(self, heap):
        address = heap.malloc(8)
        heap.free(address)
        with pytest.raises(MiniCRuntimeError):
            heap.free(address)

    def test_freed_block_recycled_same_size(self, heap):
        address = heap.malloc(24)
        heap.free(address)
        assert heap.malloc(24) == address


class TestRealloc:
    def test_null_realloc_is_malloc(self, heap):
        address = heap.realloc(0, 16)
        assert heap.allocations[address] == 16

    def test_zero_size_is_free(self, heap):
        address = heap.malloc(16)
        assert heap.realloc(address, 0) == 0
        assert address not in heap.allocations

    def test_same_rounded_size_keeps_address(self, heap):
        address = heap.malloc(16)
        assert heap.realloc(address, 14) == address

    def test_grow_copies_contents(self, heap):
        address = heap.malloc(8)
        heap.memory.store_word(address, 111)
        heap.memory.store_word(address + 4, 222)
        new_address = heap.realloc(address, 32)
        assert heap.memory.load_word(new_address) == 111
        assert heap.memory.load_word(new_address + 4) == 222

    def test_listener_sees_single_realloc_event(self, heap):
        events = []

        class Listener:
            def on_alloc(self, a, s):
                events.append(("alloc", a, s))

            def on_free(self, a, s):
                events.append(("free", a, s))

            def on_realloc(self, old, old_size, new, new_size):
                events.append(("realloc", old, new))

        address = heap.malloc(8)
        heap.listeners.append(Listener())
        heap.realloc(address, 64)
        kinds = [event[0] for event in events]
        assert kinds == ["realloc"]


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["malloc", "free", "realloc"]), st.integers(1, 200)),
        min_size=1,
        max_size=60,
    )
)
def test_allocator_invariants(ops):
    """Live blocks never overlap and live_bytes always balances."""
    heap = HeapAllocator(Memory())
    live = []
    for op, size in ops:
        if op == "malloc":
            live.append(heap.malloc(size))
        elif op == "free" and live:
            heap.free(live.pop(0))
        elif op == "realloc" and live:
            live[0] = heap.realloc(live[0], size)
    spans = sorted((a, a + heap.allocations[a]) for a in live)
    for (_, end), (begin, _) in zip(spans, spans[1:]):
        assert end <= begin
    assert heap.live_bytes() == sum(heap.allocations[a] for a in live)
    assert set(heap.allocations) == set(live)


class TestBuiltinsFromMiniC:
    def test_malloc_free_roundtrip(self, minic):
        source = """
        int main() {
          int *p;
          p = malloc(12);
          p[0] = 1; p[1] = 2; p[2] = 3;
          free(p);
          return 0;
        }
        """
        assert minic.run(source) == 0
        assert minic.runtime.heap.n_allocs == 1
        assert minic.runtime.heap.n_frees == 1

    def test_realloc_preserves_data(self, minic):
        source = """
        int main() {
          int *p;
          p = malloc(8);
          p[0] = 42;
          p = realloc(p, 400);
          return p[0];
        }
        """
        assert minic.run(source) == 42

    def test_print_builtins(self, minic):
        source = """
        int main() {
          print_int(123);
          print_float(1.5);
          print_char('x');
          return 0;
        }
        """
        minic.run(source)
        assert minic.output == ["123", "1.5", "x"]

    def test_math_builtins(self, minic):
        source = """
        int main() {
          float a;
          a = sqrt(16.0) + fabs(-2.0) + log(exp(3.0));
          return a;
        }
        """
        assert minic.run(source) == 9

    def test_math_domain_error(self, minic):
        with pytest.raises(MiniCRuntimeError):
            minic.run("int main() { float x; x = sqrt(-1.0); return 0; }")

    def test_builtins_charge_cycles(self):
        cpu = Cpu(Memory())
        runtime = Runtime(cpu)
        runtime.install()
        before = cpu.cycles
        cpu.builtins[0](cpu, [64])  # malloc
        assert cpu.cycles > before
