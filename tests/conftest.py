"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.machine import Cpu, Memory, load_program
from repro.machine.layout import MemoryLayout
from repro.minic.compiler import compile_source
from repro.minic.runtime import Runtime


class MiniCRunner:
    """Compile-and-run helper: the workhorse of the behavioral tests."""

    def __init__(self) -> None:
        self.runtime = None
        self.cpu = None
        self.image = None

    def run(self, source: str, entry: str = "main", args=(), max_instructions: int = 5_000_000):
        """Compile ``source``, run ``entry``, return the exit value."""
        program = compile_source(source, "test")
        self.image = load_program(program)
        self.cpu = Cpu(Memory())
        self.runtime = Runtime(self.cpu)
        self.runtime.install()
        self.cpu.attach(self.image)
        state = self.cpu.run(entry, args, max_instructions)
        return state.exit_value

    @property
    def output(self):
        return self.runtime.output


@pytest.fixture
def minic():
    """Fresh MiniC compile-and-run helper."""
    return MiniCRunner()


def run_minic(source: str, entry: str = "main", args=()):
    """Function-style helper for tests that need several programs."""
    return MiniCRunner().run(source, entry, args)
