"""Tests for monitor-session definitions and discovery."""

import pytest

from repro.errors import SessionError
from repro.sessions import SessionDef, discover_sessions
from repro.sessions.types import (
    ALL_HEAP_IN_FUNC,
    ALL_LOCAL_IN_FUNC,
    ONE_GLOBAL_STATIC,
    ONE_HEAP,
    ONE_LOCAL_AUTO,
)
from repro.trace import ObjectRegistry


@pytest.fixture
def registry():
    reg = ObjectRegistry()
    reg.local("f", "x", 4, False)           # 0
    reg.local("f", "y", 8, False)           # 1
    reg.local("g", "x", 4, True)            # 2 (param)
    reg.static("f", "count", 4)             # 3
    reg.global_("glob", 4)                  # 4
    reg.heap("g", ("main", "g"), 16)        # 5
    reg.heap("g", ("main", "h", "g"), 16)   # 6
    return reg


class TestDefinitions:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SessionError):
            SessionDef(0, "Bogus", "x", (1,))

    def test_empty_members_rejected(self):
        with pytest.raises(SessionError):
            SessionDef(0, ONE_HEAP, "x", ())

    def test_n_members(self):
        session = SessionDef(0, ALL_LOCAL_IN_FUNC, "f.*", (1, 2, 3))
        assert session.n_members == 3


class TestDiscovery:
    def test_indexes_dense_and_ordered(self, registry):
        sessions = discover_sessions(registry)
        assert [s.index for s in sessions] == list(range(len(sessions)))

    def test_one_local_auto_per_local(self, registry):
        sessions = [s for s in discover_sessions(registry) if s.kind == ONE_LOCAL_AUTO]
        assert {s.label for s in sessions} == {"f.x", "f.y", "g.x"}
        assert all(s.n_members == 1 for s in sessions)

    def test_all_local_in_func_includes_statics(self, registry):
        sessions = {
            s.label: s
            for s in discover_sessions(registry)
            if s.kind == ALL_LOCAL_IN_FUNC
        }
        assert set(sessions) == {"f.*", "g.*"}
        assert set(sessions["f.*"].member_ids) == {0, 1, 3}
        assert set(sessions["g.*"].member_ids) == {2}

    def test_one_global_static_excludes_function_statics(self, registry):
        sessions = [s for s in discover_sessions(registry) if s.kind == ONE_GLOBAL_STATIC]
        assert [s.label for s in sessions] == ["glob"]

    def test_one_heap_per_allocation(self, registry):
        sessions = [s for s in discover_sessions(registry) if s.kind == ONE_HEAP]
        assert len(sessions) == 2

    def test_all_heap_in_func_uses_dynamic_context(self, registry):
        sessions = {
            s.label: set(s.member_ids)
            for s in discover_sessions(registry)
            if s.kind == ALL_HEAP_IN_FUNC
        }
        # main contains both allocations; h only the second; g both.
        assert sessions["heap@main"] == {5, 6}
        assert sessions["heap@g"] == {5, 6}
        assert sessions["heap@h"] == {6}

    def test_empty_registry_yields_nothing(self):
        assert discover_sessions(ObjectRegistry()) == []

    def test_all_heap_in_func_order_follows_context_appearance(self):
        """AllHeapInFunc sessions come out in call-context appearance
        order, independent of string hash randomization — the property
        the parallel pipeline's bit-identical-output guarantee rests on
        (a ``set()`` over the context used to scramble it per process).
        """
        reg = ObjectRegistry()
        reg.heap("c", ("alpha", "beta", "c"), 16)
        reg.heap("c", ("alpha", "gamma", "c", "gamma"), 16)
        labels = [
            s.label for s in discover_sessions(reg)
            if s.kind == ALL_HEAP_IN_FUNC
        ]
        assert labels == ["heap@alpha", "heap@beta", "heap@c", "heap@gamma"]
