"""Tests for the analytical models (paper Figures 3-6).

The crown-jewel test here is cross-validation against the paper itself:
feeding the paper's published mean counting variables (Table 3) and base
times (Table 1) through our model implementations must reproduce the
paper's published mean relative overheads (Table 4) — the models are
linear, so means map to means.
"""

import pytest

from repro.models import (
    CodePatchModel,
    NativeHardwareModel,
    TrapPatchModel,
    VirtualMemoryModel,
    get_model,
    overhead_breakdown,
    paper_approaches,
    relative_overhead,
)
from repro.models.base import Overhead
from repro.models.paper_data import TABLE_1, TABLE_3, TABLE_4
from repro.models.timing import SPARCSTATION_2_TIMING, TimingVariables
from repro.simulate.counting import CountingVariables, VmPageCounts


def make_counts(installs=0, removes=0, hits=0, misses=0, protects=0,
                unprotects=0, apm=0, page_size=4096):
    counts = CountingVariables(installs=installs, removes=removes, hits=hits, misses=misses)
    counts.vm[page_size] = VmPageCounts(protects, unprotects, apm)
    return counts


T = SPARCSTATION_2_TIMING


class TestNativeHardware:
    def test_only_hits_cost(self):
        model = NativeHardwareModel(T)
        overhead = model.overhead(make_counts(installs=10, removes=10, hits=3, misses=1000))
        assert overhead.monitor_hit == 3 * 131.0
        assert overhead.monitor_miss == 0
        assert overhead.install_monitor == 0
        assert overhead.remove_monitor == 0
        assert overhead.total_us == 393.0

    def test_zero_hits_zero_overhead(self):
        model = NativeHardwareModel(T)
        assert model.overhead(make_counts(misses=10**6)).total_us == 0


class TestCodePatch:
    def test_every_write_pays_lookup(self):
        model = CodePatchModel(T)
        overhead = model.overhead(make_counts(hits=2, misses=8, installs=1, removes=1))
        assert overhead.monitor_hit == 2 * 2.75
        assert overhead.monitor_miss == 8 * 2.75
        assert overhead.install_monitor == 22.0
        assert overhead.remove_monitor == 22.0


class TestTrapPatch:
    def test_every_write_pays_trap_plus_lookup(self):
        model = TrapPatchModel(T)
        overhead = model.overhead(make_counts(hits=2, misses=8))
        assert overhead.total_us == pytest.approx(10 * (102 + 2.75))

    def test_tp_is_cp_plus_trap_cost(self):
        counts = make_counts(hits=5, misses=95, installs=3, removes=3)
        tp = TrapPatchModel(T).overhead(counts).total_us
        cp = CodePatchModel(T).overhead(counts).total_us
        assert tp - cp == pytest.approx(100 * 102.0)


class TestVirtualMemory:
    def test_figure4_formula(self):
        model = VirtualMemoryModel(T)
        counts = make_counts(
            installs=2, removes=2, hits=3, misses=100, protects=4, unprotects=4, apm=10
        )
        overhead = model.overhead(counts)
        fault = 561 + 2.75
        dance = 299 + 22 + 80
        assert overhead.monitor_hit == pytest.approx(3 * fault)
        assert overhead.monitor_miss == pytest.approx(10 * fault)
        assert overhead.install_monitor == pytest.approx(2 * dance + 4 * 80)
        assert overhead.remove_monitor == pytest.approx(2 * dance + 4 * 299)

    def test_page_size_selects_counts(self):
        model = VirtualMemoryModel(T)
        counts = make_counts(hits=1, apm=5, page_size=4096)
        counts.vm[8192] = VmPageCounts(0, 0, 50)
        small = model.overhead(counts, 4096).total_us
        large = model.overhead(counts, 8192).total_us
        assert large > small

    def test_breakdown_sums_to_total(self):
        model = VirtualMemoryModel(T)
        counts = make_counts(
            installs=7, removes=7, hits=13, misses=1000, protects=5, unprotects=5, apm=40
        )
        overhead = model.overhead(counts)
        assert sum(overhead.by_timing_variable.values()) == pytest.approx(overhead.total_us)


class TestEveryModelBreakdownConsistent:
    @pytest.mark.parametrize("abbrev", ["NH", "VM", "TP", "CP"])
    def test_breakdown_sums_to_total(self, abbrev):
        model = get_model(abbrev, T)
        counts = make_counts(
            installs=3, removes=3, hits=9, misses=500, protects=2, unprotects=2, apm=17
        )
        overhead = model.overhead(counts)
        assert sum(overhead.by_timing_variable.values()) == pytest.approx(
            overhead.total_us
        )


class TestRegistry:
    def test_lookup_by_abbrev_and_name(self):
        assert isinstance(get_model("NH", T), NativeHardwareModel)
        assert isinstance(get_model("VirtualMemory", T), VirtualMemoryModel)

    def test_unknown_model(self):
        from repro.errors import PipelineError

        with pytest.raises(PipelineError):
            get_model("XYZ", T)

    def test_paper_approaches_order(self):
        labels = [approach.label for approach in paper_approaches()]
        assert labels == ["NH", "VM-4K", "VM-8K", "TP", "CP"]


class TestRelativeOverhead:
    def test_normalization(self):
        overhead = Overhead(monitor_hit=500.0)
        assert relative_overhead(overhead, 1000.0) == 0.5

    def test_zero_base_rejected(self):
        with pytest.raises(ValueError):
            relative_overhead(Overhead(), 0.0)


class TestBreakdownAggregation:
    def test_mean_of_percentages(self):
        overheads = [
            Overhead(monitor_hit=90, monitor_miss=10,
                     by_timing_variable={"A": 90.0, "B": 10.0}),
            Overhead(monitor_hit=50, monitor_miss=50,
                     by_timing_variable={"A": 50.0, "B": 50.0}),
        ]
        shares = overhead_breakdown(overheads)
        assert shares["A"] == pytest.approx(70.0)
        assert shares["B"] == pytest.approx(30.0)

    def test_zero_overhead_sessions_skipped(self):
        shares = overhead_breakdown([Overhead()])
        assert shares == {}


class TestCrossValidationAgainstPaper:
    """Paper Table 3 x our models == paper Table 4 mean column."""

    def _mean_counts(self, program):
        row = TABLE_3[program]
        counts = CountingVariables(
            installs=row.install_remove,
            removes=row.install_remove,
            hits=row.hits,
            misses=row.misses,
        )
        counts.vm[4096] = VmPageCounts(
            row.vm4k_protects, row.vm4k_protects, row.vm4k_active_page_misses
        )
        counts.vm[8192] = VmPageCounts(
            row.vm8k_protects, row.vm8k_protects, row.vm8k_active_page_misses
        )
        return counts

    @pytest.mark.parametrize("program", sorted(TABLE_1))
    @pytest.mark.parametrize("label", ["NH", "VM-4K", "VM-8K", "TP", "CP"])
    def test_mean_relative_overhead_matches_paper(self, program, label):
        counts = self._mean_counts(program)
        base_us = TABLE_1[program].execution_ms * 1000.0
        approach = next(a for a in paper_approaches() if a.label == label)
        rel = relative_overhead(
            approach.model.overhead(counts, approach.page_size), base_us
        )
        paper_mean = TABLE_4[program][label].mean
        # Published values are rounded to two decimals; allow 5% + rounding.
        assert rel == pytest.approx(paper_mean, rel=0.05, abs=0.02)
