"""Tests for the five benchmark workloads (run at smoke scale).

Each workload must run to completion, self-check, and exhibit the
session-type profile the paper reports for its original (Table 1):
ctex and qcd allocate no heap; bps churns thousands of nodes at full
scale; gcc frees everything it allocates.
"""

import pytest

from repro.sessions import discover_sessions
from repro.simulate import simulate_sessions
from repro.workloads import WORKLOADS, get_workload, run_workload
from repro.workloads.base import Workload
from repro.errors import PipelineError


@pytest.fixture(scope="module")
def smoke_runs():
    return {
        name: run_workload(workload, workload.smoke_scale)
        for name, workload in WORKLOADS.items()
    }


class TestRegistry:
    def test_all_five_programs(self):
        assert set(WORKLOADS) == {"gcc", "ctex", "spice", "qcd", "bps"}

    def test_lookup(self):
        assert get_workload("gcc").name == "gcc"

    def test_unknown_rejected(self):
        with pytest.raises(PipelineError):
            get_workload("doom")


class TestAllWorkloadsRun:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_completes_with_nonzero_checksum(self, smoke_runs, name):
        run = smoke_runs[name]
        assert run.state.halted
        assert run.state.exit_value not in (None, 0)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_trace_writes_match_cpu_stores(self, smoke_runs, name):
        run = smoke_runs[name]
        assert run.trace.meta.n_writes == run.state.stores

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_install_remove_balanced(self, smoke_runs, name):
        run = smoke_runs[name]
        assert run.trace.meta.n_installs == run.trace.meta.n_removes

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_deterministic(self, name):
        workload = WORKLOADS[name]
        first = run_workload(workload, workload.smoke_scale)
        second = run_workload(workload, workload.smoke_scale)
        assert first.state.exit_value == second.state.exit_value
        assert first.state.instructions == second.state.instructions
        assert list(first.trace) == list(second.trace)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_write_density_realistic(self, smoke_runs, name):
        """Writes should be a few percent of cycles (section 8 regime)."""
        run = smoke_runs[name]
        density = run.trace.meta.n_writes / run.trace.meta.cycles
        assert 0.01 < density < 0.08


class TestSessionProfiles:
    def test_ctex_and_qcd_have_no_heap(self, smoke_runs):
        for name in ("ctex", "qcd"):
            kinds = {obj.kind for obj in smoke_runs[name].registry.objects}
            assert "heap" not in kinds

    def test_gcc_spice_bps_have_heap(self, smoke_runs):
        for name in ("gcc", "spice", "bps"):
            kinds = {obj.kind for obj in smoke_runs[name].registry.objects}
            assert "heap" in kinds

    def test_bps_heap_dominated(self, smoke_runs):
        registry = smoke_runs["bps"].registry
        heap = len(registry.by_kind("heap"))
        others = len(registry.objects) - heap
        assert heap > others

    def test_ctex_heavy_on_globals(self, smoke_runs):
        registry = smoke_runs["ctex"].registry
        assert len(registry.by_kind("global")) >= 20

    def test_every_session_type_appears_somewhere(self, smoke_runs):
        kinds = set()
        for run in smoke_runs.values():
            result = simulate_sessions(
                run.trace, run.registry, discover_sessions(run.registry), (4096,)
            )
            kinds.update(session.kind for session in result.sessions)
        assert kinds == {
            "OneLocalAuto", "AllLocalInFunc", "OneGlobalStatic",
            "OneHeap", "AllHeapInFunc",
        }

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_no_overlap_anomalies(self, smoke_runs, name):
        run = smoke_runs[name]
        result = simulate_sessions(
            run.trace, run.registry, discover_sessions(run.registry), (4096,)
        )
        assert result.overlap_anomalies == 0


class TestWorkloadInterface:
    def test_base_class_requires_source(self):
        with pytest.raises(NotImplementedError):
            Workload().source(1)

    def test_checks_reject_garbage(self):
        class Broken(Workload):
            name = "broken"

            def source(self, scale):
                # void main returns no value, tripping the base check.
                return "void main() { }"

        with pytest.raises(PipelineError):
            run_workload(Broken(), 1)
