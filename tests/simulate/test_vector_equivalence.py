"""Differential gate: the NumPy engine must be bit-identical to the
scalar reference engine.

The vectorized backend (:mod:`repro.simulate.vector_engine`) reformulates
the scalar engine's per-event loop as packed-key sorts and grouped
running sums; nothing in that reformulation is allowed to change a single
counting variable.  This suite enforces that with

* a randomized differential sweep — adversarial traces (overlapping
  installs, removes of non-live objects, open windows at EOF, unaligned
  multi-word writes, tiny and huge page sizes) replayed through both
  backends and compared field by field;
* the documented engine invariants, checked on *both* backends;
* dispatcher tests for :func:`repro.simulate.resolve_engine` and the
  ``engine=`` argument of :func:`repro.simulate.simulate_sessions`.

The CI ``engine-equivalence`` job runs the same comparison at full
pipeline scale on the five benchmark programs.
"""

import random
import threading

import pytest

from repro.errors import PipelineError, TraceFormatError
from repro.sessions.types import SessionDef, ONE_HEAP, ALL_HEAP_IN_FUNC
from repro.simulate import (
    AUTO_NUMPY_MIN_EVENTS,
    open_simulation_stream,
    resolve_engine,
    simulate_chunks,
    simulate_sessions,
)
from repro.simulate.engine import SimulationStream
from repro.simulate.engine import simulate_sessions as simulate_python
from repro.simulate.vector_engine import (
    VectorSimulationStream,
    simulate_sessions_numpy,
)
from repro.simulate._native import native_available
from repro.simulate.native_engine import (
    NativeSimulationStream,
    simulate_sessions_native,
)

needs_native = pytest.mark.skipif(
    not native_available(), reason="native kernel unavailable (no C compiler)"
)
from repro.trace import EventTrace, ObjectRegistry
from repro.trace.events import TraceMeta
from repro.trace.stream import ChunkChannel, TraceChunk, iter_chunks

#: Page-size configurations the sweep replays every trace under: the
#: production pair, single sizes, and degenerate tiny pages (4-byte
#: pages make every word its own page — maximal transition traffic).
PAGE_SIZE_CONFIGS = ((4096, 8192), (4096,), (4, 64), (16,), (4096, 8192, 16384))


def build_random(seed):
    """One adversarial trace: overlap anomalies, EOF-open windows, all."""
    rng = random.Random(seed)
    n_objects = rng.randint(1, 12)
    registry = ObjectRegistry()
    for _ in range(n_objects):
        registry.heap("f", ("main", "f"), rng.choice([4, 8, 16, 64]))
    trace = EventTrace(TraceMeta(program=f"rand{seed}"))
    addr_of = {}
    live = set()
    for _ in range(rng.randint(20, 400)):
        roll = rng.random()
        if roll < 0.35 and len(live) < n_objects:
            object_id = rng.choice(
                [o for o in range(n_objects) if o not in live] or [0]
            )
            base = rng.randrange(0, 600, 2)  # overlaps earlier regions
            size = registry.get(object_id).size_bytes
            addr_of[object_id] = (base, base + size)
            trace.append_install(object_id, base, base + size)
            live.add(object_id)
        elif roll < 0.55:
            if live and rng.random() < 0.8:
                object_id = rng.choice(sorted(live))
                live.discard(object_id)
            else:
                # Remove of a non-live object: exercises the anomaly path.
                object_id = rng.randrange(n_objects)
            begin, end = addr_of.get(object_id, (0, 4))
            trace.append_remove(object_id, begin, end)
        else:
            address = rng.randrange(0, 640)
            if rng.random() < 0.25:
                trace.append_write(address, address + rng.choice([8, 12, 24, 64]))
            else:
                trace.append_write(address, address + 4)
    # Whatever is still live stays open at EOF: exercises the flush path.
    sessions = []
    for index in range(rng.randint(1, 8)):
        members = tuple(
            sorted(rng.sample(range(n_objects), rng.randint(1, n_objects)))
        )
        kind = ONE_HEAP if len(members) == 1 else ALL_HEAP_IN_FUNC
        sessions.append(SessionDef(index, kind, f"s{index}", members))
    return trace, registry, sessions


def assert_identical(result_py, result_np):
    """Field-by-field equality of two SimulationResults."""
    assert result_py.total_writes == result_np.total_writes
    assert result_py.overlap_anomalies == result_np.overlap_anomalies
    assert result_py.n_discarded == result_np.n_discarded
    assert [s.index for s in result_py.sessions] == \
        [s.index for s in result_np.sessions]
    assert result_py.page_sizes == result_np.page_sizes
    for session, c_py, c_np in zip(
        result_py.sessions, result_py.counts, result_np.counts
    ):
        base_py = (c_py.installs, c_py.removes, c_py.hits, c_py.misses,
                   c_py.max_concurrent)
        base_np = (c_np.installs, c_np.removes, c_np.hits, c_np.misses,
                   c_np.max_concurrent)
        assert base_py == base_np, f"session {session.index}: {base_py} != {base_np}"
        assert set(c_py.vm) == set(c_np.vm)
        for size in c_py.vm:
            vm_py, vm_np = c_py.vm[size], c_np.vm[size]
            assert (vm_py.protects, vm_py.unprotects, vm_py.active_page_misses) \
                == (vm_np.protects, vm_np.unprotects, vm_np.active_page_misses), \
                f"session {session.index} vm[{size}]"


def assert_invariants(result):
    """The documented engine invariants (see engine module docstring)."""
    for counts in result.counts:
        assert counts.hits + counts.misses == result.total_writes
        assert counts.hits > 0  # zero-hit sessions are discarded
        # (removes can exceed installs here: the adversarial traces
        # deliberately remove non-live objects, which still counts.)
        for size in result.page_sizes:
            vm = counts.vm[size]
            assert 0 <= vm.active_page_misses <= counts.misses
            # Every protect window closes — on its 1->0 transition or
            # the defensive EOF flush.
            assert vm.unprotects == vm.protects


class TestDifferential:
    @pytest.mark.parametrize("page_sizes", PAGE_SIZE_CONFIGS,
                             ids=lambda sizes: "x".join(map(str, sizes)))
    def test_randomized_sweep(self, page_sizes):
        for seed in range(60):
            trace, registry, sessions = build_random(seed)
            result_py = simulate_python(trace, registry, sessions, page_sizes)
            result_np = simulate_sessions_numpy(
                trace, registry, sessions, page_sizes
            )
            assert_identical(result_py, result_np)
            assert_invariants(result_py)
            assert_invariants(result_np)

    @needs_native
    @pytest.mark.parametrize("page_sizes", PAGE_SIZE_CONFIGS,
                             ids=lambda sizes: "x".join(map(str, sizes)))
    def test_randomized_sweep_native(self, page_sizes):
        for seed in range(60):
            trace, registry, sessions = build_random(seed)
            result_py = simulate_python(trace, registry, sessions, page_sizes)
            result_nat = simulate_sessions_native(
                trace, registry, sessions, page_sizes
            )
            assert_identical(result_py, result_nat)
            assert_invariants(result_nat)

    def test_empty_trace(self):
        registry = ObjectRegistry()
        registry.heap("f", ("main", "f"), 16)
        trace = EventTrace(TraceMeta(program="empty"))
        sessions = [SessionDef(0, ONE_HEAP, "s0", (0,))]
        result_py = simulate_python(trace, registry, sessions, (4096,))
        result_np = simulate_sessions_numpy(trace, registry, sessions, (4096,))
        assert_identical(result_py, result_np)
        assert result_np.total_writes == 0
        assert result_np.n_discarded == 1

    def test_writes_only_no_installs(self):
        """No endpoints at all: every write is a miss on both backends."""
        registry = ObjectRegistry()
        registry.heap("f", ("main", "f"), 16)
        trace = EventTrace(TraceMeta(program="writes"))
        for i in range(10):
            trace.append_write(0x1000 + 4 * i, 0x1004 + 4 * i)
        sessions = [SessionDef(0, ONE_HEAP, "s0", (0,))]
        result_py = simulate_python(trace, registry, sessions, (4096,))
        result_np = simulate_sessions_numpy(trace, registry, sessions, (4096,))
        assert_identical(result_py, result_np)
        assert result_np.total_writes == 10

    def test_open_window_at_eof_flush(self):
        """A window left open at EOF flushes identically on both backends."""
        registry = ObjectRegistry()
        registry.heap("f", ("main", "f"), 8)
        trace = EventTrace(TraceMeta(program="open"))
        trace.append_install(0, 0x1000, 0x1008)
        trace.append_write(0x1000, 0x1004)   # hit
        trace.append_write(0x1200, 0x1204)   # miss, same page -> raw write
        result_py = simulate_python(trace, registry,
                                    [SessionDef(0, ONE_HEAP, "s0", (0,))],
                                    (4096,))
        result_np = simulate_sessions_numpy(trace, registry,
                                            [SessionDef(0, ONE_HEAP, "s0", (0,))],
                                            (4096,))
        assert_identical(result_py, result_np)
        vm = result_np.counts[0].vm[4096]
        assert vm.protects == 1
        assert vm.unprotects == 1  # defensive EOF flush closed it
        assert vm.active_page_misses == 1


class TestStreamingDifferential:
    """Chunked feeding must be bit-identical to whole-trace simulation.

    Chunk boundaries are framing only (docs/TRACE_FORMAT.md section 2),
    so any re-chunking of the same event sequence — including degenerate
    one-event chunks — must leave every counting variable unchanged on
    both engines.
    """

    @pytest.mark.parametrize("engine", [
        "python", "numpy",
        pytest.param("native", marks=needs_native),
    ])
    def test_randomized_chunked_sweep(self, engine):
        for seed in range(30):
            trace, registry, sessions = build_random(seed)
            chunk_events = random.Random(seed).choice([1, 3, 17, 50, 10_000])
            batch = simulate_sessions(trace, registry, sessions, (4096, 8192),
                                      engine=engine)
            streamed = simulate_chunks(
                iter_chunks(trace, chunk_events), registry, sessions,
                (4096, 8192), engine=engine, meta=trace.meta,
                expected_events=len(trace),
            )
            assert_identical(batch, streamed)
            assert_invariants(streamed)

    @pytest.mark.parametrize("stream_cls,batch_fn", [
        (SimulationStream, simulate_python),
        (VectorSimulationStream, simulate_sessions_numpy),
        pytest.param(NativeSimulationStream, simulate_sessions_native,
                     marks=needs_native),
    ], ids=["python", "numpy", "native"])
    def test_feed_chunk_incremental(self, stream_cls, batch_fn):
        trace, registry, sessions = build_random(11)
        batch = batch_fn(trace, registry, sessions, (4096,))
        stream = stream_cls(registry, sessions, (4096,))
        for chunk in iter_chunks(trace, 23):
            stream.feed_chunk(chunk)
        streamed = stream.finish(trace.meta, expected_events=len(trace))
        assert_identical(batch, streamed)

    def test_channel_threaded_replay(self):
        """Producer thread -> bounded channel -> engine, as the pipeline
        wires it, still bit-identical."""
        trace, registry, sessions = build_random(19)
        batch = simulate_python(trace, registry, sessions, (4096, 8192))
        stream = open_simulation_stream(registry, sessions, (4096, 8192),
                                        engine="python")
        channel = ChunkChannel(capacity=2)

        def produce():
            try:
                for chunk in iter_chunks(trace, 11):
                    channel.put(chunk)
            except BaseException as exc:  # pragma: no cover - diagnostics
                channel.close(error=exc)
            else:
                channel.close(meta=trace.meta)

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        for chunk in channel:
            stream.feed_chunk(chunk)
        producer.join(10.0)
        streamed = stream.finish(trace.meta, expected_events=len(trace))
        assert_identical(batch, streamed)

    @pytest.mark.parametrize("stream_cls", [
        SimulationStream, VectorSimulationStream,
        pytest.param(NativeSimulationStream, marks=needs_native),
    ], ids=["python", "numpy", "native"])
    def test_truncated_stream_fails_loudly(self, stream_cls):
        trace, registry, sessions = build_random(5)
        chunks = list(iter_chunks(trace, 25))
        stream = stream_cls(registry, sessions, (4096,))
        stream.feed_chunk(chunks[0])
        with pytest.raises(PipelineError, match="truncated chunk stream"):
            stream.finish(trace.meta, expected_events=len(trace))

    @pytest.mark.parametrize("stream_cls", [
        SimulationStream, VectorSimulationStream,
        pytest.param(NativeSimulationStream, marks=needs_native),
    ], ids=["python", "numpy", "native"])
    def test_reordered_chunks_rejected(self, stream_cls):
        trace, registry, sessions = build_random(5)
        chunks = list(iter_chunks(trace, 25))
        assert len(chunks) >= 2
        stream = stream_cls(registry, sessions, (4096,))
        with pytest.raises(PipelineError, match="out of order"):
            stream.feed_chunk(chunks[1])

    def test_corrupt_chunk_rejected_at_feed(self):
        trace, registry, sessions = build_random(5)
        chunk = next(iter_chunks(trace, 25))
        tampered = TraceChunk(
            chunk.seq, chunk.kinds, chunk.col_a.copy(), chunk.col_b,
            chunk.col_c, checksums=chunk.checksums,
        )
        tampered.col_a[0] ^= 1
        stream = SimulationStream(registry, sessions, (4096,))
        with pytest.raises(TraceFormatError, match="checksum"):
            stream.feed_chunk(tampered)

    def _stream_at_splits(self, trace, registry, sessions, page_sizes,
                          splits, stream_cls):
        """Replay ``trace`` through a simulation stream, fed as the
        column slices between consecutive ``splits`` (any monotone
        sequence over [0, n]; repeated positions feed empty batches)."""
        columns = trace.as_arrays()
        stream = stream_cls(registry, sessions, page_sizes)
        bounds = [0, *splits, len(trace)]
        for begin, end in zip(bounds[:-1], bounds[1:]):
            stream.feed(
                columns.kinds[begin:end], columns.col_a[begin:end],
                columns.col_b[begin:end], columns.col_c[begin:end],
            )
        return stream.finish(trace.meta, expected_events=len(trace))

    def test_randomized_split_points(self):
        """Arbitrary feed boundaries — empty batches, 1-event batches,
        windows straddling splits — leave streamed-numpy == batch-numpy
        == scalar, bit-identically."""
        for seed in range(25):
            trace, registry, sessions = build_random(seed)
            rng = random.Random(1000 + seed)
            n = len(trace)
            splits = sorted(
                rng.choice([rng.randint(0, n), 0, n, rng.randint(0, n)])
                for _ in range(rng.randint(0, 8))
            )
            scalar = simulate_python(trace, registry, sessions, (4096, 16))
            batch_np = simulate_sessions_numpy(
                trace, registry, sessions, (4096, 16)
            )
            assert_identical(scalar, batch_np)
            stream_classes = [SimulationStream, VectorSimulationStream]
            if native_available():
                stream_classes.append(NativeSimulationStream)
            for stream_cls in stream_classes:
                streamed = self._stream_at_splits(
                    trace, registry, sessions, (4096, 16), splits, stream_cls
                )
                assert_identical(scalar, streamed)
                assert_invariants(streamed)

    def test_window_straddles_every_boundary(self):
        """Sweep every split point of a trace whose protect windows,
        overlap anomaly, and EOF-open window all straddle chunks."""
        registry = ObjectRegistry()
        for _ in range(3):
            registry.heap("f", ("main", "f"), 16)
        trace = EventTrace(TraceMeta(program="straddle"))
        trace.append_install(0, 100, 116)
        trace.append_write(104, 108)        # hit on obj 0
        trace.append_write(200, 204)        # miss
        trace.append_install(1, 108, 124)   # overlaps obj 0: anomaly
        trace.append_write(112, 116)        # owner now obj 1
        trace.append_write(100, 124)        # multi-word write, both pages
        trace.append_remove(0, 100, 116)
        trace.append_write(104, 108)
        trace.append_install(2, 0, 16)
        trace.append_write(4, 8)
        trace.append_remove(1, 108, 124)
        trace.append_write(112, 116)        # obj 2 still open at EOF
        sessions = [
            SessionDef(0, ONE_HEAP, "s0", (0,)),
            SessionDef(1, ONE_HEAP, "s1", (1,)),
            SessionDef(2, ALL_HEAP_IN_FUNC, "s2", (0, 1, 2)),
        ]
        page_sizes = (4096, 16)
        scalar = simulate_python(trace, registry, sessions, page_sizes)
        assert scalar.overlap_anomalies > 0
        stream_classes = [SimulationStream, VectorSimulationStream]
        if native_available():
            stream_classes.append(NativeSimulationStream)
        for split in range(len(trace) + 1):
            for stream_cls in stream_classes:
                streamed = self._stream_at_splits(
                    trace, registry, sessions, page_sizes, [split],
                    stream_cls,
                )
                assert_identical(scalar, streamed)

    @pytest.mark.parametrize("stream_cls", [
        SimulationStream, VectorSimulationStream,
        pytest.param(NativeSimulationStream, marks=needs_native),
    ], ids=["python", "numpy", "native"])
    def test_empty_feeds_are_noops(self, stream_cls):
        trace, registry, sessions = build_random(7)
        batch = simulate_python(trace, registry, sessions, (4096,))
        columns = trace.as_arrays()
        stream = stream_cls(registry, sessions, (4096,))
        stream.feed([], [], [], [])
        mid = len(trace) // 2
        stream.feed(columns.kinds[:mid], columns.col_a[:mid],
                    columns.col_b[:mid], columns.col_c[:mid])
        stream.feed([], [], [], [])
        stream.feed(columns.kinds[mid:], columns.col_a[mid:],
                    columns.col_b[mid:], columns.col_c[mid:])
        stream.feed([], [], [], [])
        streamed = stream.finish(trace.meta, expected_events=len(trace))
        assert_identical(batch, streamed)

    @pytest.mark.parametrize("stream_cls", [
        SimulationStream, VectorSimulationStream,
        pytest.param(NativeSimulationStream, marks=needs_native),
    ], ids=["python", "numpy", "native"])
    def test_mismatched_column_lengths_rejected(self, stream_cls):
        """Regression: ragged feeds used to be accepted silently (the
        scalar zip truncated; the vector stream deferred the mismatch)."""
        trace, registry, sessions = build_random(7)
        stream = stream_cls(registry, sessions, (4096,))
        with pytest.raises(PipelineError, match="ragged feed"):
            stream.feed([1, 1], [4, 8], [8, 12], [0])
        stream = stream_cls(registry, sessions, (4096,))
        with pytest.raises(PipelineError, match="ragged feed"):
            stream.feed([1], [4, 8], [8], [0])

    def test_simulate_chunks_auto_engine_unknown_size(self):
        # With no size hint the dispatcher must still pick a valid
        # engine (numpy) and match the batch result.
        trace, registry, sessions = build_random(23)
        batch = simulate_sessions(trace, registry, sessions, (4096,))
        streamed = simulate_chunks(
            iter_chunks(trace, 40), registry, sessions, (4096,),
            meta=trace.meta,
        )
        assert_identical(batch, streamed)


class TestDispatcher:
    def test_resolve_rejects_unknown(self):
        with pytest.raises(PipelineError):
            resolve_engine("cython")

    def test_resolve_python_is_explicit(self):
        assert resolve_engine("python", n_events=10**9) == "python"

    def test_resolve_numpy_is_explicit(self):
        # NumPy ships with the repo; an explicit request must honor it.
        assert resolve_engine("numpy", n_events=1) == "numpy"

    def test_auto_small_trace_stays_scalar(self):
        assert resolve_engine("auto", AUTO_NUMPY_MIN_EVENTS - 1) == "python"

    def test_auto_large_trace_goes_compiled(self):
        # auto prefers native when the kernel loads, numpy otherwise
        # (the full availability matrix lives in test_engine_dispatch.py).
        expected = "native" if native_available() else "numpy"
        assert resolve_engine("auto", AUTO_NUMPY_MIN_EVENTS) == expected

    def test_simulate_sessions_engine_arg(self):
        trace, registry, sessions = build_random(7)
        result_py = simulate_sessions(trace, registry, sessions, (4096,),
                                      engine="python")
        result_np = simulate_sessions(trace, registry, sessions, (4096,),
                                      engine="numpy")
        result_auto = simulate_sessions(trace, registry, sessions, (4096,),
                                        engine="auto")
        assert_identical(result_py, result_np)
        assert_identical(result_py, result_auto)

    def test_simulate_sessions_rejects_unknown_engine(self):
        trace, registry, sessions = build_random(7)
        with pytest.raises(PipelineError):
            simulate_sessions(trace, registry, sessions, (4096,),
                              engine="fortran")

    def test_numpy_engine_rejects_bad_page_sizes(self):
        trace, registry, sessions = build_random(7)
        with pytest.raises(PipelineError):
            simulate_sessions_numpy(trace, registry, sessions, (3000,))

    def test_numpy_engine_rejects_empty_sessions(self):
        trace, registry, sessions = build_random(7)
        with pytest.raises(PipelineError):
            simulate_sessions_numpy(trace, registry, [], (4096,))
