"""Tests for the one-pass simulation engine.

Covers hand-computed small traces, the awkward cases (recursion,
realloc, multi-page objects), the documented invariants, and a
brute-force per-session oracle over randomized traces.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PipelineError
from repro.sessions.types import SessionDef, ONE_HEAP, ALL_HEAP_IN_FUNC
from repro.simulate import simulate_sessions
from repro.trace import EventTrace, ObjectRegistry


def make_registry(n_objects):
    registry = ObjectRegistry()
    for _ in range(n_objects):
        registry.heap("f", ("main", "f"), 16)
    return registry


def sessions_of(member_lists):
    return [
        SessionDef(index, ONE_HEAP if len(members) == 1 else ALL_HEAP_IN_FUNC,
                   f"s{index}", tuple(members))
        for index, members in enumerate(member_lists)
    ]


class TestHandComputed:
    def test_single_hit_and_miss(self):
        registry = make_registry(1)
        trace = EventTrace("t")
        trace.append_install(0, 0x1000, 0x1010)
        trace.append_write(0x1004, 0x1008)   # hit
        trace.append_write(0x2000, 0x2004)   # miss
        trace.append_remove(0, 0x1000, 0x1010)
        result = simulate_sessions(trace, registry, sessions_of([[0]]), (4096,))
        counts = result.counts[0]
        assert counts.hits == 1
        assert counts.misses == 1
        assert counts.installs == 1
        assert counts.removes == 1

    def test_write_outside_window_is_miss(self):
        registry = make_registry(1)
        trace = EventTrace("t")
        trace.append_write(0x1004, 0x1008)   # before install
        trace.append_install(0, 0x1000, 0x1010)
        trace.append_remove(0, 0x1000, 0x1010)
        trace.append_write(0x1004, 0x1008)   # after remove
        result = simulate_sessions(trace, registry, sessions_of([[0]]), (4096,))
        # Zero hits: the session is discarded entirely.
        assert result.sessions == []
        assert result.n_discarded == 1

    def test_active_page_miss(self):
        registry = make_registry(1)
        trace = EventTrace("t")
        trace.append_install(0, 0x1000, 0x1008)
        trace.append_write(0x1004, 0x1008)   # hit, same page
        trace.append_write(0x1100, 0x1104)   # miss, same 4K page -> APM
        trace.append_write(0x9000, 0x9004)   # miss, other page
        trace.append_remove(0, 0x1000, 0x1008)
        result = simulate_sessions(trace, registry, sessions_of([[0]]), (4096,))
        vm = result.counts[0].vm_counts(4096)
        assert vm.active_page_misses == 1
        assert vm.protects == 1
        assert vm.unprotects == 1

    def test_page_transitions_shared_page(self):
        """Two session members on one page: a single protect window."""
        registry = make_registry(2)
        trace = EventTrace("t")
        trace.append_install(0, 0x1000, 0x1008)
        trace.append_install(1, 0x1100, 0x1108)
        trace.append_write(0x1000, 0x1004)
        trace.append_remove(0, 0x1000, 0x1008)
        trace.append_write(0x1100, 0x1104)
        trace.append_remove(1, 0x1100, 0x1108)
        both = sessions_of([[0, 1]])
        result = simulate_sessions(trace, registry, both, (4096,))
        vm = result.counts[0].vm_counts(4096)
        assert vm.protects == 1
        assert vm.unprotects == 1
        assert result.counts[0].hits == 2

    def test_multi_page_object(self):
        registry = make_registry(1)
        trace = EventTrace("t")
        trace.append_install(0, 0x0FF8, 0x1010)  # spans two 4K pages
        trace.append_write(0x0FF8, 0x0FFC)
        trace.append_write(0x100C, 0x1010)
        trace.append_remove(0, 0x0FF8, 0x1010)
        result = simulate_sessions(trace, registry, sessions_of([[0]]), (4096,))
        vm = result.counts[0].vm_counts(4096)
        assert result.counts[0].hits == 2
        assert vm.protects == 2   # both pages transitioned
        assert vm.unprotects == 2

    def test_recursive_instantiations_same_object(self):
        """Two live instantiations of one object id (recursion)."""
        registry = make_registry(1)
        trace = EventTrace("t")
        trace.append_install(0, 0x1000, 0x1008)   # outer frame
        trace.append_install(0, 0x2000, 0x2008)   # inner frame
        trace.append_write(0x1000, 0x1004)        # hit via outer
        trace.append_write(0x2000, 0x2004)        # hit via inner
        trace.append_remove(0, 0x2000, 0x2008)
        trace.append_write(0x2000, 0x2004)        # inner gone: miss
        trace.append_remove(0, 0x1000, 0x1008)
        result = simulate_sessions(trace, registry, sessions_of([[0]]), (4096,))
        counts = result.counts[0]
        assert counts.hits == 2
        assert counts.misses == 1
        assert counts.installs == 2

    def test_page_size_sensitivity(self):
        """A miss one 4K page away is an APM only at the 8K page size."""
        registry = make_registry(1)
        trace = EventTrace("t")
        trace.append_install(0, 0x0000, 0x0008)
        trace.append_write(0x0000, 0x0004)    # hit
        trace.append_write(0x1004, 0x1008)    # next 4K page, same 8K page
        trace.append_remove(0, 0x0000, 0x0008)
        result = simulate_sessions(trace, registry, sessions_of([[0]]), (4096, 8192))
        counts = result.counts[0]
        assert counts.vm_counts(4096).active_page_misses == 0
        assert counts.vm_counts(8192).active_page_misses == 1

    def test_no_sessions_rejected(self):
        with pytest.raises(PipelineError):
            simulate_sessions(EventTrace("t"), make_registry(1), [], (4096,))


class TestInvariants:
    def _result(self):
        registry = make_registry(3)
        trace = EventTrace("t")
        trace.append_install(0, 0x1000, 0x1010)
        trace.append_install(1, 0x1010, 0x1020)
        trace.append_install(2, 0x3000, 0x3010)
        for address in (0x1000, 0x1014, 0x3000, 0x5000, 0x1008):
            trace.append_write(address, address + 4)
        trace.append_remove(0, 0x1000, 0x1010)
        trace.append_remove(1, 0x1010, 0x1020)
        trace.append_remove(2, 0x3000, 0x3010)
        sessions = sessions_of([[0], [1], [2], [0, 1], [0, 2]])
        return simulate_sessions(trace, registry, sessions, (4096, 8192))

    def test_hits_plus_misses_is_total_writes(self):
        result = self._result()
        for counts in result.counts:
            assert counts.hits + counts.misses == result.total_writes

    def test_apm_bounded_by_misses(self):
        result = self._result()
        for counts in result.counts:
            for size in (4096, 8192):
                assert 0 <= counts.vm_counts(size).active_page_misses <= counts.misses

    def test_protects_equal_unprotects(self):
        result = self._result()
        for counts in result.counts:
            for size in (4096, 8192):
                vm = counts.vm_counts(size)
                assert vm.protects == vm.unprotects

    def test_union_session_hits_at_least_members(self):
        result = self._result()
        by_label = {s.label: c for s, c in zip(result.sessions, result.counts)}
        assert by_label["s3"].hits >= max(by_label["s0"].hits, by_label["s1"].hits)


# ---------------------------------------------------------------------------
# Brute-force oracle over randomized traces.
# ---------------------------------------------------------------------------

N_SLOTS = 6
SLOT_STRIDE = 64
BASE = 0x1000


def _oracle(trace, sessions, page_size):
    """Per-session replay, the O(sessions x events) way the paper did it."""
    results = {}
    for session in sessions:
        members = set(session.member_ids)
        active = {}  # (object, begin, end) -> count
        page_active = {}
        page_writes_while_active = 0
        installs = removes = hits = protects = unprotects = 0
        total_writes = 0
        for kind, a, b, c in trace:
            if kind == 3:  # WRITE: columns are (BA, EA, 0)
                total_writes += 1
                hit = any(
                    a < end and b > begin for (_, begin, end), n in active.items() if n > 0
                )
                if hit:
                    hits += 1
                if page_active.get(a >> (page_size.bit_length() - 1), 0) > 0:
                    page_writes_while_active += 1
            elif kind == 1 and a in members:  # INSTALL
                installs += 1
                key = (a, b, c)
                active[key] = active.get(key, 0) + 1
                first = b >> (page_size.bit_length() - 1)
                last = (c - 1) >> (page_size.bit_length() - 1)
                for page in range(first, last + 1):
                    page_active[page] = page_active.get(page, 0) + 1
                    if page_active[page] == 1:
                        protects += 1
            elif kind == 2 and a in members:  # REMOVE
                removes += 1
                active[(a, b, c)] -= 1
                first = b >> (page_size.bit_length() - 1)
                last = (c - 1) >> (page_size.bit_length() - 1)
                for page in range(first, last + 1):
                    page_active[page] -= 1
                    if page_active[page] == 0:
                        unprotects += 1
        results[session.index] = {
            "installs": installs,
            "removes": removes,
            "hits": hits,
            "misses": total_writes - hits,
            "protects": protects,
            "unprotects": unprotects,
            "apm": page_writes_while_active - hits,
        }
    return results


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_engine_matches_bruteforce_oracle(data):
    registry = make_registry(N_SLOTS)
    trace = EventTrace("t")
    live = {}

    n_events = data.draw(st.integers(5, 80))
    for _ in range(n_events):
        action = data.draw(st.sampled_from(["install", "remove", "write", "write"]))
        if action == "install":
            slot = data.draw(st.integers(0, N_SLOTS - 1))
            if slot in live:
                continue
            begin = BASE + slot * SLOT_STRIDE
            end = begin + 4 * data.draw(st.integers(1, 8))
            live[slot] = (begin, end)
            trace.append_install(slot, begin, end)
        elif action == "remove":
            if not live:
                continue
            slot = data.draw(st.sampled_from(sorted(live)))
            begin, end = live.pop(slot)
            trace.append_remove(slot, begin, end)
        else:
            word = data.draw(st.integers(0, (N_SLOTS * SLOT_STRIDE) // 4 - 1))
            address = BASE + word * 4
            trace.append_write(address, address + 4)
    for slot, (begin, end) in sorted(live.items()):
        trace.append_remove(slot, begin, end)

    member_lists = [[slot] for slot in range(N_SLOTS)]
    member_lists.append([0, 1, 2])
    member_lists.append([3, 4, 5])
    member_lists.append(list(range(N_SLOTS)))
    sessions = sessions_of(member_lists)

    page_size = data.draw(st.sampled_from([64, 128, 4096]))
    result = simulate_sessions(trace, registry, sessions, (page_size,))
    expected = _oracle(trace, sessions, page_size)
    assert result.overlap_anomalies == 0

    studied = {session.index: counts for session, counts in zip(result.sessions, result.counts)}
    for session in sessions:
        want = expected[session.index]
        if want["hits"] == 0:
            assert session.index not in studied
            continue
        got = studied[session.index]
        vm = got.vm_counts(page_size)
        assert got.installs == want["installs"]
        assert got.removes == want["removes"]
        assert got.hits == want["hits"]
        assert got.misses == want["misses"]
        assert vm.protects == want["protects"]
        assert vm.unprotects == want["unprotects"]
        assert vm.active_page_misses == want["apm"]
