"""Dispatcher fallback matrix: every ``engine`` request × every backend
availability combination.

``resolve_engine`` has three inputs — the request, what is importable /
compiled on this box, and the size signal (``n_events`` or the streaming
``chunk_hint``).  This suite pins the full matrix:

* ``auto`` prefers native → numpy → python, degrading silently as
  backends disappear;
* explicit ``numpy``/``native`` requests are demands — an unavailable
  backend raises :class:`PipelineError` rather than substituting;
* small known traces stay scalar under ``auto`` regardless of what is
  available, and the unknown-size streaming path (the deferred-auto
  stream) makes the same choice once the size is known.

Availability is simulated by monkeypatching the probe functions (for
resolution logic) and via ``REPRO_NATIVE_DISABLE`` (for the real
loader's gate), so the matrix runs identically on boxes with and
without a C toolchain.
"""

import pytest

import repro.simulate as sim
from repro.errors import PipelineError
from repro.simulate import (
    AUTO_NUMPY_MIN_EVENTS,
    open_simulation_stream,
    resolve_engine,
    simulate_chunks,
    simulate_sessions,
)
from repro.simulate._native import native_available
from repro.simulate.engine import SimulationStream
from repro.simulate.engine import simulate_sessions as simulate_python
from repro.trace.stream import iter_chunks

from test_vector_equivalence import assert_identical, build_random

BIG = AUTO_NUMPY_MIN_EVENTS
SMALL = AUTO_NUMPY_MIN_EVENTS - 1


@pytest.fixture
def availability(monkeypatch):
    """Force the dispatcher's view of backend availability."""

    def set_available(native=True, numpy=True):
        monkeypatch.setattr(sim, "_native_available", lambda: native)
        monkeypatch.setattr(sim, "_numpy_available", lambda: numpy)

    return set_available


class TestResolveMatrix:
    """resolve_engine over request × availability × size."""

    @pytest.mark.parametrize("native,numpy,expected", [
        (True, True, "native"),
        (True, False, "native"),
        (False, True, "numpy"),
        (False, False, "python"),
    ])
    def test_auto_large_trace_prefers_native(
        self, availability, native, numpy, expected
    ):
        availability(native=native, numpy=numpy)
        assert resolve_engine("auto", BIG) == expected

    @pytest.mark.parametrize("native,numpy", [
        (True, True), (True, False), (False, True), (False, False),
    ])
    def test_auto_small_trace_stays_scalar(self, availability, native, numpy):
        availability(native=native, numpy=numpy)
        assert resolve_engine("auto", SMALL) == "python"

    @pytest.mark.parametrize("native,numpy", [
        (True, True), (True, False), (False, True), (False, False),
    ])
    def test_python_is_always_honored(self, availability, native, numpy):
        availability(native=native, numpy=numpy)
        assert resolve_engine("python", BIG) == "python"

    def test_explicit_numpy_demand_raises_without_numpy(self, availability):
        availability(native=True, numpy=False)
        with pytest.raises(PipelineError, match="numpy.*not importable"):
            resolve_engine("numpy", BIG)

    def test_explicit_numpy_honored_even_with_native(self, availability):
        availability(native=True, numpy=True)
        assert resolve_engine("numpy", BIG) == "numpy"

    def test_explicit_native_demand_raises_without_kernel(self, availability):
        availability(native=False, numpy=True)
        with pytest.raises(PipelineError, match="native.*unavailable"):
            resolve_engine("native", BIG)

    def test_explicit_native_honored(self, availability):
        availability(native=True, numpy=True)
        assert resolve_engine("native", SMALL) == "native"

    def test_unknown_engine_rejected(self, availability):
        availability()
        with pytest.raises(PipelineError, match="unknown engine"):
            resolve_engine("cython")

    def test_unknown_size_resolves_compiled(self, availability):
        availability(native=True, numpy=True)
        assert resolve_engine("auto", None) == "native"
        availability(native=False, numpy=True)
        assert resolve_engine("auto", None) == "numpy"
        availability(native=False, numpy=False)
        assert resolve_engine("auto", None) == "python"


class TestChunkHint:
    """The streaming size hint (satellite: ``--stream`` auto-dispatch)."""

    def test_large_chunk_hint_commits_to_compiled(self, availability):
        availability(native=True, numpy=True)
        assert resolve_engine("auto", None, chunk_hint=BIG) == "native"
        availability(native=False, numpy=True)
        assert resolve_engine("auto", None, chunk_hint=BIG) == "numpy"

    def test_small_chunk_hint_proves_nothing(self, availability):
        # A small *chunk* does not mean a small *trace*: resolution
        # falls through to the compiled preference (the deferred stream
        # below is what protects genuinely tiny traces).
        availability(native=True, numpy=True)
        assert resolve_engine("auto", None, chunk_hint=SMALL) == "native"

    def test_known_size_beats_chunk_hint(self, availability):
        availability(native=True, numpy=True)
        assert resolve_engine("auto", SMALL, chunk_hint=BIG) == "python"

    def test_open_stream_defers_without_signal(self):
        trace, registry, sessions = build_random(3)
        stream = open_simulation_stream(registry, sessions, (4096,))
        assert isinstance(stream, sim._DeferredAutoStream)

    def test_open_stream_commits_with_large_hint(self):
        trace, registry, sessions = build_random(3)
        stream = open_simulation_stream(
            registry, sessions, (4096,), chunk_hint=BIG
        )
        assert not isinstance(stream, sim._DeferredAutoStream)

    def test_deferred_tiny_stream_lands_on_scalar(self):
        # The whole point of deferral: a tiny streamed trace must end up
        # on the scalar engine, not pay compiled-backend setup.
        trace, registry, sessions = build_random(3)
        batch = simulate_python(trace, registry, sessions, (4096,))
        stream = open_simulation_stream(registry, sessions, (4096,))
        for chunk in iter_chunks(trace, 25):
            stream.feed_chunk(chunk)
        assert stream._inner is None  # still buffering: under threshold
        result = stream.finish(trace.meta, expected_events=len(trace))
        assert isinstance(stream._inner, SimulationStream)
        assert_identical(batch, result)

    def test_deferred_large_stream_switches_to_compiled(self):
        trace, registry, sessions = build_random(3)
        batch = simulate_python(trace, registry, sessions, (4096,))
        n = len(trace)
        reps = AUTO_NUMPY_MIN_EVENTS // n + 1
        cols = trace.as_arrays()
        stream = open_simulation_stream(registry, sessions, (4096,))
        for _ in range(reps):
            stream.feed(cols.kinds, cols.col_a, cols.col_b, cols.col_c)
        assert stream._inner is not None
        assert not isinstance(stream._inner, SimulationStream)
        assert stream.events_fed == reps * n
        result = stream.finish(trace.meta, expected_events=reps * n)
        # Same trace repeated: per-session totals scale but stay exact —
        # compare against the scalar stream fed identically.
        ref = SimulationStream(registry, sessions, (4096,))
        for _ in range(reps):
            ref.feed(cols.kinds, cols.col_a, cols.col_b, cols.col_c)
        assert_identical(ref.finish(trace.meta), result)

    def test_deferred_stream_enforces_protocol(self):
        trace, registry, sessions = build_random(3)
        chunks = list(iter_chunks(trace, 25))
        stream = open_simulation_stream(registry, sessions, (4096,))
        with pytest.raises(PipelineError, match="out of order"):
            stream.feed_chunk(chunks[-1])
        stream = open_simulation_stream(registry, sessions, (4096,))
        with pytest.raises(PipelineError, match="ragged feed"):
            stream.feed([1, 1], [4, 8], [8, 12], [0])
        stream = open_simulation_stream(registry, sessions, (4096,))
        stream.feed_chunk(chunks[0])
        with pytest.raises(PipelineError, match="truncated chunk stream"):
            stream.finish(trace.meta, expected_events=len(trace))
        with pytest.raises(PipelineError, match="finished"):
            stream.finish(trace.meta)

    def test_simulate_chunks_forwards_reader_hint(self, tmp_path):
        from repro.sessions.types import SessionDef, ONE_HEAP
        from repro.trace import EventTrace, ObjectRegistry
        from repro.trace.tracefile import TraceStreamReader, save_trace_chunked

        registry = ObjectRegistry()
        registry.heap("f", ("main", "f"), 16)
        trace = EventTrace("hint")
        trace.append_install(0, 0x1000, 0x1010)
        for i in range(300):
            trace.append_write(0x1000 + 4 * (i % 8), 0x1004 + 4 * (i % 8))
        trace.append_remove(0, 0x1000, 0x1010)
        sessions = [SessionDef(0, ONE_HEAP, "s0", (0,))]
        path = tmp_path / "t.npz"
        save_trace_chunked(trace, registry, path, chunk_events=50)
        batch = simulate_python(trace, registry, sessions, (4096,))
        with TraceStreamReader(path, chunk_events=50) as reader:
            assert reader.chunk_events == 50
            streamed = simulate_chunks(reader, registry, sessions, (4096,))
        assert_identical(batch, streamed)


class TestRealLoaderGate:
    """The actual loader's availability gate (not the monkeypatched view)."""

    def test_disable_env_forces_unavailable(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        assert not native_available(refresh=True)
        with pytest.raises(PipelineError, match="native"):
            trace, registry, sessions = build_random(1)
            simulate_sessions(trace, registry, sessions, (4096,),
                              engine="native")
        monkeypatch.delenv("REPRO_NATIVE_DISABLE")
        native_available(refresh=True)  # restore the memoized probe

    def test_auto_degrades_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        native_available(refresh=True)
        trace, registry, sessions = build_random(1)
        batch = simulate_python(trace, registry, sessions, (4096,))
        result = simulate_sessions(trace, registry, sessions, (4096,),
                                   engine="auto")
        assert_identical(batch, result)
        monkeypatch.delenv("REPRO_NATIVE_DISABLE")
        native_available(refresh=True)

    @pytest.mark.skipif(
        not native_available(), reason="native kernel unavailable"
    )
    def test_native_stream_raises_when_disabled(self, monkeypatch):
        from repro.simulate.native_engine import NativeSimulationStream

        trace, registry, sessions = build_random(1)
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        native_available(refresh=True)
        try:
            with pytest.raises(PipelineError, match="unavailable"):
                NativeSimulationStream(registry, sessions, (4096,))
        finally:
            monkeypatch.delenv("REPRO_NATIVE_DISABLE")
            native_available(refresh=True)
