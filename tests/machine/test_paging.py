"""Tests for the paging unit."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MachineError
from repro.machine.paging import PageTable, Protection


class TestConstruction:
    def test_default_page_size(self):
        assert PageTable().page_size == 4096

    def test_page_shift(self):
        assert PageTable(4096).page_shift == 12
        assert PageTable(8192).page_shift == 13

    def test_rejects_non_power_of_two(self):
        with pytest.raises(MachineError):
            PageTable(3000)


class TestProtection:
    def test_pages_start_writable(self):
        table = PageTable()
        assert not table.is_write_protected(0x0010_0000)
        assert table.protection_of(table.page_of(0x0010_0000)) is Protection.READ_WRITE

    def test_protect_and_check(self):
        table = PageTable()
        page = table.page_of(0x0010_0000)
        table.protect([page])
        assert table.is_write_protected(0x0010_0000)
        assert table.is_write_protected(0x0010_0FFC)  # same page
        assert not table.is_write_protected(0x0010_1000)  # next page

    def test_unprotect(self):
        table = PageTable()
        page = table.page_of(0x0010_0000)
        table.protect([page])
        table.unprotect([page])
        assert not table.is_write_protected(0x0010_0000)

    def test_unprotect_not_protected_is_noop(self):
        table = PageTable()
        table.unprotect([5])  # must not raise

    def test_clear(self):
        table = PageTable()
        table.protect([1, 2, 3])
        table.clear()
        assert not table.write_protected


class TestPageRanges:
    def test_single_page_range(self):
        table = PageTable(4096)
        assert list(table.pages_of_range(0, 4)) == [0]

    def test_range_spanning_two_pages(self):
        table = PageTable(4096)
        assert list(table.pages_of_range(4092, 4100)) == [0, 1]

    def test_range_exactly_one_page(self):
        table = PageTable(4096)
        assert list(table.pages_of_range(4096, 8192)) == [1]

    def test_empty_range_yields_nothing(self):
        table = PageTable(4096)
        assert list(table.pages_of_range(100, 100)) == []
        assert list(table.pages_of_range(100, 50)) == []


@given(
    begin=st.integers(0, 2**22),
    length=st.integers(1, 70000),
    page_size=st.sampled_from([1024, 4096, 8192, 65536]),
)
def test_pages_of_range_covers_every_byte(begin, length, page_size):
    """Every byte of the range falls in exactly one returned page."""
    table = PageTable(page_size)
    pages = list(table.pages_of_range(begin, begin + length))
    assert pages[0] == begin // page_size
    assert pages[-1] == (begin + length - 1) // page_size
    assert pages == list(range(pages[0], pages[-1] + 1))
