"""Tests for the loader and the flat program image."""

import pytest

from repro.errors import MachineError
from repro.machine import isa
from repro.machine.loader import load_program
from repro.minic.compiler import compile_source

SOURCE = """
int g = 5;
int table[3] = {1, 2, 3};

int add(int a, int b) { return a + b; }

int main() {
  int x;
  x = add(g, 2);
  return x;
}
"""


@pytest.fixture
def image():
    return load_program(compile_source(SOURCE, "loader-test"))


class TestFunctionLayout:
    def test_functions_contiguous(self, image):
        offset = 0
        for func in image.functions:
            assert func.entry_pc == offset
            offset = func.end_pc
        assert offset == len(image.code)

    def test_function_index_lookup(self, image):
        assert image.functions[image.function_index("main")].name == "main"

    def test_unknown_function_raises(self, image):
        with pytest.raises(MachineError):
            image.function_index("nope")

    def test_function_at_pc(self, image):
        add = image.function("add")
        assert image.function_at_pc(add.entry_pc).name == "add"
        assert image.function_at_pc(add.end_pc - 1).name == "add"

    def test_function_at_bad_pc_is_none(self, image):
        assert image.function_at_pc(len(image.code) + 10) is None


class TestBranchRetargeting:
    def test_all_branch_targets_inside_owner_function(self, image):
        for func in image.functions:
            for pc in range(func.entry_pc, func.end_pc):
                instr = image.code[pc]
                if instr[0] == isa.JMP:
                    target = instr[1]
                elif instr[0] in (isa.BF, isa.BT):
                    target = instr[2]
                else:
                    continue
                assert func.entry_pc <= target <= func.end_pc


class TestGlobals:
    def test_global_lookup(self, image):
        var = image.global_var("g")
        assert var.size_bytes == 4

    def test_unknown_global_raises(self, image):
        with pytest.raises(MachineError):
            image.global_var("nope")

    def test_init_words_cover_initializers(self, image):
        table = image.global_var("table")
        initialized = {addr: val for addr, val in image.global_init_words}
        assert initialized[image.global_var("g").address] == 5
        assert initialized[table.address] == 1
        assert initialized[table.address + 8] == 3


class TestIntrospection:
    def test_static_store_count_positive(self, image):
        assert image.static_store_count() > 0

    def test_disassemble_whole_image(self, image):
        text = image.disassemble()
        assert "main:" in text
        assert len(text.splitlines()) == len(image.code)

    def test_disassemble_one_function(self, image):
        text = image.disassemble("add")
        add = image.function("add")
        assert len(text.splitlines()) == add.end_pc - add.entry_pc

    def test_duplicate_function_rejected(self):
        program = compile_source(SOURCE, "dup")
        program.functions.append(program.functions[0])
        with pytest.raises(MachineError):
            load_program(program)

    def test_line_map_points_into_source(self, image):
        lines = SOURCE.count("\n") + 1
        for pc, line in image.line_map.items():
            assert 0 < line <= lines
