"""Tests for trap kinds and fault frames."""

from repro.machine.traps import TrapFrame, TrapKind


class TestTrapFrame:
    def test_monitor_fault_needs_no_emulation(self):
        """Write monitors notify *after* the write (paper section 1)."""
        frame = TrapFrame(TrapKind.MONITOR_FAULT, pc=5, address=0x100, value=1)
        assert not frame.needs_emulation

    def test_write_fault_needs_emulation(self):
        frame = TrapFrame(
            TrapKind.WRITE_FAULT, pc=5, address=0x100, value=1,
            store_operands=(0x100, 1),
        )
        assert frame.needs_emulation

    def test_trap_instr_needs_emulation(self):
        frame = TrapFrame(
            TrapKind.TRAP_INSTR, pc=5, address=0x100, value=1,
            store_operands=(0x100, 1),
        )
        assert frame.needs_emulation

    def test_breakpoint_carries_no_store(self):
        frame = TrapFrame(TrapKind.BREAKPOINT, pc=9)
        assert frame.address is None
        assert frame.store_operands is None
        assert not frame.needs_emulation

    def test_kinds_are_distinct(self):
        assert len({kind.value for kind in TrapKind}) == len(list(TrapKind))
