"""Tests for the address-space layout."""

import pytest

from repro.errors import MachineError
from repro.machine.layout import DEFAULT_LAYOUT, MemoryLayout


class TestDefaults:
    def test_segments_ordered(self):
        layout = DEFAULT_LAYOUT
        assert layout.global_base < layout.heap_base < layout.stack_limit < layout.stack_top

    def test_heap_limit_is_stack_limit(self):
        assert DEFAULT_LAYOUT.heap_limit == DEFAULT_LAYOUT.stack_limit

    def test_global_limit_is_heap_base(self):
        assert DEFAULT_LAYOUT.global_limit == DEFAULT_LAYOUT.heap_base


class TestSegmentClassification:
    @pytest.mark.parametrize(
        "address,segment",
        [
            (0x0000_1000, "reserved"),
            (0x0010_0000, "global"),
            (0x0020_0000, "heap"),
            (0x00F8_0000, "stack"),
            (0x00E0_0000, "stack"),
            (0x00DF_FFFC, "heap"),
        ],
    )
    def test_segment_of(self, address, segment):
        assert DEFAULT_LAYOUT.segment_of(address) == segment


class TestValidation:
    def test_rejects_misaligned_boundary(self):
        with pytest.raises(MachineError):
            MemoryLayout(global_base=0x0010_0002)

    def test_rejects_out_of_order_segments(self):
        with pytest.raises(MachineError):
            MemoryLayout(heap_base=0x0008_0000)  # below global_base

    def test_rejects_non_power_of_two_size(self):
        with pytest.raises(MachineError):
            MemoryLayout(memory_size=0x00F0_0000)
