"""Tests for the word-addressed simulated memory."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AlignmentFault, MemoryFault
from repro.machine.layout import MemoryLayout
from repro.machine.memory import Memory


@pytest.fixture
def memory():
    return Memory()


class TestBasicAccess:
    def test_initially_zero(self, memory):
        assert memory.load_word(0x0010_0000) == 0

    def test_store_load_roundtrip(self, memory):
        memory.store_word(0x0010_0000, 42)
        assert memory.load_word(0x0010_0000) == 42

    def test_store_float_value(self, memory):
        memory.store_word(0x0010_0004, 3.25)
        assert memory.load_word(0x0010_0004) == 3.25

    def test_adjacent_words_independent(self, memory):
        memory.store_word(0x0010_0000, 1)
        memory.store_word(0x0010_0004, 2)
        assert memory.load_word(0x0010_0000) == 1
        assert memory.load_word(0x0010_0004) == 2

    def test_negative_values(self, memory):
        memory.store_word(0x0010_0000, -123456)
        assert memory.load_word(0x0010_0000) == -123456


class TestFaults:
    def test_misaligned_load(self, memory):
        with pytest.raises(AlignmentFault):
            memory.load_word(0x0010_0001)

    def test_misaligned_store(self, memory):
        with pytest.raises(AlignmentFault):
            memory.store_word(0x0010_0002, 1)

    def test_load_past_end(self, memory):
        with pytest.raises(MemoryFault):
            memory.load_word(memory.layout.memory_size)

    def test_store_negative_address(self, memory):
        with pytest.raises(MemoryFault):
            memory.store_word(-4, 1)

    def test_range_past_end(self, memory):
        with pytest.raises(MemoryFault):
            memory.load_range(memory.layout.memory_size - 4, 2)


class TestRangeOps:
    def test_store_load_range(self, memory):
        memory.store_range(0x0010_0000, [1, 2, 3, 4])
        assert memory.load_range(0x0010_0000, 4) == [1, 2, 3, 4]

    def test_fill(self, memory):
        memory.fill(0x0010_0000, 8, 7)
        assert memory.load_range(0x0010_0000, 8) == [7] * 8

    def test_clear(self, memory):
        memory.store_word(0x0010_0000, 5)
        memory.clear()
        assert memory.load_word(0x0010_0000) == 0


@given(
    address=st.integers(min_value=0, max_value=(0x0100_0000 // 4) - 1).map(lambda w: w * 4),
    value=st.one_of(st.integers(-2**40, 2**40), st.floats(allow_nan=False, allow_infinity=False)),
)
def test_roundtrip_property(address, value):
    memory = Memory()
    memory.store_word(address, value)
    assert memory.load_word(address) == value
