"""Tests for the hardware monitor-register file."""

import pytest

from repro.errors import MachineError, MonitorRegisterExhausted
from repro.machine.monitor_registers import MonitorRegisterFile


class TestAllocation:
    def test_starts_empty(self):
        mrf = MonitorRegisterFile()
        assert not mrf.any_enabled
        assert mrf.n_free() == 4

    def test_allocate_sets_flag(self):
        mrf = MonitorRegisterFile()
        mrf.allocate(0x100, 0x104)
        assert mrf.any_enabled
        assert mrf.n_free() == 3

    def test_default_four_registers_1992_hardware(self):
        """No widely-used 1992 chip supported more than four (section 3.1)."""
        mrf = MonitorRegisterFile()
        for index in range(4):
            mrf.allocate(index * 16, index * 16 + 4)
        with pytest.raises(MonitorRegisterExhausted):
            mrf.allocate(0x1000, 0x1004)

    def test_release_frees_register(self):
        mrf = MonitorRegisterFile()
        index = mrf.allocate(0x100, 0x104)
        mrf.release(index)
        assert mrf.n_free() == 4
        assert not mrf.any_enabled

    def test_release_range(self):
        mrf = MonitorRegisterFile()
        mrf.allocate(0x100, 0x104)
        assert mrf.release_range(0x100, 0x104)
        assert not mrf.release_range(0x100, 0x104)  # already gone

    def test_release_all(self):
        mrf = MonitorRegisterFile()
        mrf.allocate(0, 4)
        mrf.allocate(8, 12)
        mrf.release_all()
        assert mrf.n_free() == 4

    def test_rejects_empty_range(self):
        mrf = MonitorRegisterFile()
        with pytest.raises(MachineError):
            mrf.allocate(0x100, 0x100)

    def test_configurable_register_count(self):
        mrf = MonitorRegisterFile(n_registers=16)
        for index in range(16):
            mrf.allocate(index * 8, index * 8 + 4)
        assert mrf.n_free() == 0


class TestHitDetection:
    def test_hit_inside_range(self):
        mrf = MonitorRegisterFile()
        mrf.allocate(0x100, 0x110)
        assert mrf.hit(0x104, 0x108) is not None

    def test_miss_outside_range(self):
        mrf = MonitorRegisterFile()
        mrf.allocate(0x100, 0x110)
        assert mrf.hit(0x110, 0x114) is None
        assert mrf.hit(0xFC, 0x100) is None

    def test_hit_at_boundary(self):
        mrf = MonitorRegisterFile()
        mrf.allocate(0x100, 0x110)
        assert mrf.hit(0xFC, 0x104) is not None  # overlaps first word
        assert mrf.hit(0x10C, 0x114) is not None  # overlaps last word

    def test_disabled_register_never_hits(self):
        mrf = MonitorRegisterFile()
        index = mrf.allocate(0x100, 0x110)
        mrf.release(index)
        assert mrf.hit(0x100, 0x104) is None

    def test_hit_returns_correct_index(self):
        mrf = MonitorRegisterFile()
        mrf.allocate(0x100, 0x104)
        second = mrf.allocate(0x200, 0x204)
        assert mrf.hit(0x200, 0x204) == second
