"""CPU semantics tests, driven through compiled MiniC programs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CpuLimitExceeded, MiniCRuntimeError, StackOverflow
from repro.machine.cpu import _c_div, _c_mod

from tests.conftest import run_minic


def expr_program(expression: str) -> str:
    return f"int main() {{ return {expression}; }}"


class TestIntegerArithmetic:
    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("1 + 2", 3),
            ("10 - 4", 6),
            ("6 * 7", 42),
            ("7 / 2", 3),
            ("-7 / 2", -3),       # C truncates toward zero
            ("7 / -2", -3),
            ("-7 / -2", 3),
            ("7 % 3", 1),
            ("-7 % 3", -1),       # sign follows dividend
            ("7 % -3", 1),
            ("1 << 10", 1024),
            ("1024 >> 3", 128),
            ("0xF0 & 0x3C", 0x30),
            ("0xF0 | 0x0F", 0xFF),
            ("0xFF ^ 0x0F", 0xF0),
            ("~0", -1),
            ("-(5)", -5),
            ("2 + 3 * 4", 14),     # precedence
            ("(2 + 3) * 4", 20),
        ],
    )
    def test_expression(self, expression, expected):
        assert run_minic(expr_program(expression)) == expected

    def test_division_by_zero_raises(self):
        with pytest.raises(MiniCRuntimeError):
            run_minic("int main() { int z; z = 0; return 5 / z; }")

    def test_char_literals_are_ints(self):
        assert run_minic(expr_program("'a'")) == 97
        assert run_minic(expr_program("'\\n'")) == 10


class TestComparisonsAndLogic:
    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("3 < 4", 1), ("4 < 3", 0), ("3 <= 3", 1), ("3 > 4", 0),
            ("4 >= 4", 1), ("3 == 3", 1), ("3 != 3", 0),
            ("1 && 1", 1), ("1 && 0", 0), ("0 || 1", 1), ("0 || 0", 0),
            ("!0", 1), ("!5", 0),
        ],
    )
    def test_expression(self, expression, expected):
        assert run_minic(expr_program(expression)) == expected

    def test_short_circuit_and_skips_rhs(self):
        source = """
        int side;
        int bump() { side = side + 1; return 1; }
        int main() {
          int r;
          r = 0 && bump();
          return side * 10 + r;
        }
        """
        assert run_minic(source) == 0

    def test_short_circuit_or_skips_rhs(self):
        source = """
        int side;
        int bump() { side = side + 1; return 0; }
        int main() {
          int r;
          r = 1 || bump();
          return side * 10 + r;
        }
        """
        assert run_minic(source) == 1

    def test_logical_result_normalized_to_one(self):
        assert run_minic(expr_program("7 && 9")) == 1
        assert run_minic(expr_program("0 || 42")) == 1


class TestFloats:
    def test_float_arithmetic(self):
        assert run_minic("int main() { float x; x = 1.5 * 4.0; return x; }") == 6

    def test_int_to_float_conversion(self):
        assert run_minic("int main() { float x; x = 3; x = x / 2.0; return x * 10.0; }") == 15

    def test_float_compare(self):
        assert run_minic(expr_program("1.5 < 2.5")) == 1

    def test_float_division_by_zero_raises(self):
        with pytest.raises(MiniCRuntimeError):
            run_minic("int main() { float z; z = 0.0; return 1.0 / z; }")

    def test_mixed_arithmetic_promotes(self):
        assert run_minic("int main() { float x; x = 1 + 0.5; return x * 2.0; }") == 3


class TestControlFlow:
    def test_if_else(self):
        source = "int main() { if (3 > 2) return 1; else return 2; }"
        assert run_minic(source) == 1

    def test_while_loop(self):
        source = "int main() { int i; int s; s = 0; i = 0; while (i < 10) { s = s + i; i = i + 1; } return s; }"
        assert run_minic(source) == 45

    def test_for_loop(self):
        source = "int main() { int i; int s; s = 0; for (i = 0; i < 5; i = i + 1) s = s + i * i; return s; }"
        assert run_minic(source) == 30

    def test_break(self):
        source = "int main() { int i; for (i = 0; i < 100; i = i + 1) { if (i == 7) break; } return i; }"
        assert run_minic(source) == 7

    def test_continue(self):
        source = """
        int main() {
          int i; int s; s = 0;
          for (i = 0; i < 10; i = i + 1) { if (i % 2 == 0) continue; s = s + i; }
          return s;
        }
        """
        assert run_minic(source) == 25

    def test_continue_in_while_reaches_condition(self):
        source = """
        int main() {
          int i; int s; i = 0; s = 0;
          while (i < 5) { i = i + 1; if (i == 3) continue; s = s + i; }
          return s;
        }
        """
        assert run_minic(source) == 12

    def test_nested_loops_with_break(self):
        source = """
        int main() {
          int i; int j; int c; c = 0;
          for (i = 0; i < 4; i = i + 1) {
            for (j = 0; j < 4; j = j + 1) { if (j == 2) break; c = c + 1; }
          }
          return c;
        }
        """
        assert run_minic(source) == 8


class TestFunctionsAndStack:
    def test_recursion(self):
        source = """
        int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
        int main() { return fact(7); }
        """
        assert run_minic(source) == 5040

    def test_mutual_recursion(self):
        source = """
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main() { return is_even(10) * 10 + is_odd(7); }
        """
        assert run_minic(source) == 11

    def test_arguments_passed_by_value(self):
        source = """
        void clobber(int x) { x = 999; }
        int main() { int v; v = 5; clobber(v); return v; }
        """
        assert run_minic(source) == 5

    def test_locals_fresh_per_instantiation(self):
        source = """
        int probe(int depth) {
          int mine;
          mine = depth;
          if (depth > 0) probe(depth - 1);
          return mine;
        }
        int main() { return probe(5); }
        """
        assert run_minic(source) == 5

    def test_stack_overflow_detected(self):
        source = """
        int forever(int n) { int pad[64]; pad[0] = n; return forever(n + 1); }
        int main() { return forever(0); }
        """
        with pytest.raises(StackOverflow):
            run_minic(source)

    def test_instruction_budget_enforced(self):
        source = "int main() { while (1) { } return 0; }"
        with pytest.raises(CpuLimitExceeded):
            run_minic(source)

    def test_void_function_falls_off_end(self):
        source = """
        int g;
        void set() { g = 9; }
        int main() { set(); return g; }
        """
        assert run_minic(source) == 9

    def test_int_function_implicit_return_zero(self):
        source = """
        int nothing() { }
        int main() { return nothing() + 3; }
        """
        assert run_minic(source) == 3


class TestPointers:
    def test_address_of_and_deref(self):
        source = "int main() { int x; int *p; x = 10; p = &x; *p = 20; return x; }"
        assert run_minic(source) == 20

    def test_pointer_arithmetic_scales_by_word(self):
        source = """
        int main() {
          int a[4]; int *p;
          a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
          p = a;
          p = p + 2;
          return *p;
        }
        """
        assert run_minic(source) == 3

    def test_pointer_difference_in_elements(self):
        source = """
        int main() {
          int a[10]; int *p; int *q;
          p = &a[2]; q = &a[7];
          return q - p;
        }
        """
        assert run_minic(source) == 5

    def test_array_decay_in_call(self):
        source = """
        int first(int *a) { return a[0]; }
        int main() { int a[3]; a[0] = 77; return first(a); }
        """
        assert run_minic(source) == 77

    def test_out_param_through_pointer(self):
        source = """
        void set(int *out, int v) { *out = v; }
        int main() { int x; set(&x, 31); return x; }
        """
        assert run_minic(source) == 31

    def test_pointer_into_global_array(self):
        source = """
        int table[8];
        int main() { int *p; p = &table[3]; *p = 5; return table[3]; }
        """
        assert run_minic(source) == 5


class TestGlobalsAndStatics:
    def test_global_initializer(self):
        assert run_minic("int g = 41; int main() { return g + 1; }") == 42

    def test_global_array_initializer(self):
        source = "int a[4] = {10, 20, 30}; int main() { return a[0] + a[1] + a[2] + a[3]; }"
        assert run_minic(source) == 60

    def test_static_local_persists(self):
        source = """
        int counter() { static int n; n = n + 1; return n; }
        int main() { counter(); counter(); return counter(); }
        """
        assert run_minic(source) == 3

    def test_statics_in_different_functions_distinct(self):
        source = """
        int a() { static int n; n = n + 1; return n; }
        int b() { static int n; n = n + 10; return n; }
        int main() { a(); b(); return a() * 100 + b(); }
        """
        assert run_minic(source) == 220

    def test_float_global_initializer(self):
        assert run_minic("float f = 2.5; int main() { return f * 4.0; }") == 10


def _c_eval(op, a, b):
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        return _c_div(a, b)
    return _c_mod(a, b)


@settings(max_examples=60, deadline=None)
@given(
    a=st.integers(-1000, 1000),
    b=st.integers(-1000, 1000),
    c=st.integers(1, 50),
    op1=st.sampled_from("+-*"),
    op2=st.sampled_from("+-*/%"),
)
def test_expression_oracle(a, b, c, op1, op2):
    """Random arithmetic expressions agree with a C-semantics oracle."""
    expected = _c_eval(op2, _c_eval(op1, a, b), c)
    got = run_minic(expr_program(f"(({a}) {op1} ({b})) {op2} ({c})"))
    assert got == expected


class TestCDivHelpers:
    @given(a=st.integers(-10**6, 10**6), b=st.integers(-10**6, 10**6).filter(lambda x: x != 0))
    def test_div_mod_identity(self, a, b):
        assert _c_div(a, b) * b + _c_mod(a, b) == a

    @given(a=st.integers(-10**6, 10**6), b=st.integers(-10**6, 10**6).filter(lambda x: x != 0))
    def test_mod_sign_follows_dividend(self, a, b):
        remainder = _c_mod(a, b)
        assert remainder == 0 or (remainder > 0) == (a > 0)
