"""Tests for the chunked (v2) trace container and its readers.

The byte-level contract is ``docs/TRACE_FORMAT.md``: incremental chunk
members plus a ``stream`` footer, atomic publish, and loud failure on
truncation, reordering, checksum mismatch, or an unknown version.  Both
container versions must load through both access paths
(:func:`load_trace` and :class:`TraceStreamReader`), which is what makes
cache entries interchangeable between ``--stream`` and batch runs.
"""

from __future__ import annotations

import json
import zipfile

import numpy as np
import pytest

from repro.errors import PipelineError, TraceFormatError
from repro.trace import (
    EventTrace,
    ObjectRegistry,
    load_trace,
    save_trace,
)
from repro.trace.events import TraceMeta
from repro.trace.stream import TraceChunk, iter_chunks
from repro.trace.tracefile import (
    ChunkedTraceWriter,
    TraceStreamReader,
    save_trace_chunked,
)


def build_fixture(n_events=100):
    """A deterministic trace + registry with every object kind."""
    registry = ObjectRegistry()
    registry.global_("g", 4)
    registry.local("main", "i", 4, is_param=False)
    registry.static("leaf", "seen", 4)
    registry.heap("main", ("main",), 16)
    trace = EventTrace("chunked-test")
    for i in range(n_events):
        which = i % 5
        base = 0x1000 + 8 * i
        if which == 0:
            trace.append_install(i % 4, base, base + 8)
        elif which == 1:
            trace.append_remove(i % 4, base, base + 8)
        else:
            trace.append_write(base, base + 4)
    trace.meta.cycles = 1234
    trace.meta.instructions = 567
    trace.meta.stores = n_events
    return trace, registry


def assert_same_trace(loaded, original):
    trace, registry = loaded
    assert vars(trace.meta) == vars(original[0].meta)
    got = trace.as_arrays()
    want = original[0].as_arrays()
    for field in got._fields:
        assert np.array_equal(
            np.asarray(getattr(got, field)), np.asarray(getattr(want, field))
        ), field
    assert [vars(obj) for obj in registry.objects] == \
        [vars(obj) for obj in original[1].objects]


def _members(path):
    """All archive members as {name-without-.npy: ndarray}."""
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def _write_zip(path, arrays):
    """Rebuild an archive from a member dict (the corruption helper)."""
    with zipfile.ZipFile(path, "w") as zf:
        for name, array in arrays.items():
            with zf.open(name + ".npy", "w") as member:
                np.lib.format.write_array(member, array, allow_pickle=False)


def _edit_footer(path, mutate):
    """Parse the v2 footer JSON, apply ``mutate(doc)``, write it back."""
    arrays = _members(path)
    doc = json.loads(bytes(arrays["stream"].tobytes()).decode("utf-8"))
    mutate(doc)
    arrays["stream"] = np.frombuffer(
        json.dumps(doc).encode("utf-8"), dtype=np.uint8
    )
    _write_zip(path, arrays)


class TestRoundTrip:
    @pytest.mark.parametrize("chunk_events", [1, 7, 100, 1000])
    def test_chunked_save_load(self, tmp_path, chunk_events):
        original = build_fixture()
        path = tmp_path / "trace.npz"
        save_trace_chunked(*original, path, chunk_events=chunk_events)
        assert_same_trace(load_trace(path), original)

    def test_v1_and_v2_materialize_identically(self, tmp_path):
        original = build_fixture()
        save_trace(*original, tmp_path / "v1.npz")
        save_trace_chunked(*original, tmp_path / "v2.npz", chunk_events=13)
        assert_same_trace(load_trace(tmp_path / "v1.npz"), original)
        assert_same_trace(load_trace(tmp_path / "v2.npz"), original)

    def test_empty_trace_round_trips(self, tmp_path):
        registry = ObjectRegistry()
        registry.heap("main", ("main",), 8)
        empty = EventTrace("empty")
        path = tmp_path / "empty.npz"
        save_trace_chunked(empty, registry, path)
        trace, loaded_registry = load_trace(path)
        assert len(trace) == 0
        assert len(loaded_registry.objects) == 1
        with TraceStreamReader(path) as reader:
            assert reader.n_chunks == 0
            assert list(reader.chunks()) == []


class TestStreamReader:
    def test_reads_v2_chunk_by_chunk(self, tmp_path):
        original = build_fixture()
        path = tmp_path / "trace.npz"
        save_trace_chunked(*original, path, chunk_events=17)
        with TraceStreamReader(path) as reader:
            assert reader.version == 2
            assert reader.n_events == len(original[0])
            assert reader.n_chunks == -(-100 // 17)
            assert vars(reader.meta) == vars(original[0].meta)
            chunks = list(reader)
            assert [chunk.seq for chunk in chunks] == \
                list(range(reader.n_chunks))
            joined = np.concatenate([chunk.kinds for chunk in chunks])
            assert np.array_equal(
                joined, np.asarray(original[0].as_arrays().kinds)
            )
            reader.verify()

    def test_reads_v1_by_rechunking(self, tmp_path):
        original = build_fixture()
        path = tmp_path / "v1.npz"
        save_trace(*original, path)
        with TraceStreamReader(path, chunk_events=30) as reader:
            assert reader.version == 1
            assert reader.n_events == 100
            assert reader.n_chunks == 4
            assert [chunk.n_events for chunk in reader] == [30, 30, 30, 10]

    def test_rejects_archive_with_neither_version(self, tmp_path):
        path = tmp_path / "mystery.npz"
        np.savez(path, payload=np.zeros(4))
        with pytest.raises(TraceFormatError, match="unrecognized trace file"):
            TraceStreamReader(path)
        with pytest.raises(TraceFormatError):
            load_trace(path)


class TestCorruptionDetection:
    @pytest.fixture
    def saved(self, tmp_path):
        original = build_fixture()
        path = tmp_path / "trace.npz"
        save_trace_chunked(*original, path, chunk_events=25)
        return path

    def test_missing_chunk_member_is_truncation(self, saved):
        arrays = _members(saved)
        del arrays["chunk-00000002.col_b"]
        _write_zip(saved, arrays)
        with pytest.raises(
            TraceFormatError,
            match="truncated chunked trace: missing member chunk-00000002",
        ):
            TraceStreamReader(saved)
        with pytest.raises(TraceFormatError):
            load_trace(saved)

    def test_bitflip_in_column_fails_checksum(self, saved):
        arrays = _members(saved)
        tampered = arrays["chunk-00000001.col_a"].copy()
        tampered[3] ^= 1
        arrays["chunk-00000001.col_a"] = tampered
        _write_zip(saved, arrays)
        with TraceStreamReader(saved) as reader:
            with pytest.raises(
                TraceFormatError, match="chunk 1: column col_a checksum"
            ):
                list(reader)
        with pytest.raises(TraceFormatError, match="checksum"):
            load_trace(saved)

    def test_unknown_version_rejected(self, saved):
        _edit_footer(saved, lambda doc: doc.update(version=3))
        with pytest.raises(
            TraceFormatError, match="unsupported trace format version 3"
        ):
            TraceStreamReader(saved)

    def test_footer_event_total_mismatch(self, saved):
        _edit_footer(saved, lambda doc: doc.update(n_events=doc["n_events"] + 1))
        with pytest.raises(TraceFormatError, match="footer says"):
            TraceStreamReader(saved)

    def test_reordered_chunk_index_rejected(self, saved):
        def swap(doc):
            doc["chunks"][0], doc["chunks"][1] = \
                doc["chunks"][1], doc["chunks"][0]

        _edit_footer(saved, swap)
        with pytest.raises(TraceFormatError, match="chunk index out of order"):
            TraceStreamReader(saved)

    def test_garbage_footer_is_corrupt_metadata(self, saved):
        arrays = _members(saved)
        arrays["stream"] = np.frombuffer(b"not json at all", dtype=np.uint8)
        _write_zip(saved, arrays)
        with pytest.raises(TraceFormatError, match="corrupt trace metadata"):
            TraceStreamReader(saved)


class TestWriterProtocol:
    def test_abort_leaves_destination_untouched(self, tmp_path):
        original = build_fixture()
        dest = tmp_path / "trace.npz"
        save_trace_chunked(*original, dest, chunk_events=40)
        before = dest.read_bytes()
        writer = ChunkedTraceWriter(dest)
        writer.write_chunk(next(iter_chunks(original[0], 10)))
        writer.abort()
        # The published entry is intact; the temp file is gone.
        assert dest.read_bytes() == before
        assert sorted(p.name for p in tmp_path.iterdir()) == ["trace.npz"]

    def test_context_exit_without_finalize_publishes_nothing(self, tmp_path):
        original = build_fixture()
        dest = tmp_path / "trace.npz"
        with pytest.raises(RuntimeError, match="mid-write"):
            with ChunkedTraceWriter(dest) as writer:
                for chunk in iter_chunks(original[0], 30):
                    writer.write_chunk(chunk)
                    raise RuntimeError("simulated crash mid-write")
        assert not dest.exists()
        assert list(tmp_path.iterdir()) == []

    def test_rejects_out_of_order_chunks(self, tmp_path):
        original = build_fixture()
        chunks = list(iter_chunks(original[0], 30))
        with ChunkedTraceWriter(tmp_path / "trace.npz") as writer:
            writer.write_chunk(chunks[0])
            with pytest.raises(PipelineError, match="out of order"):
                writer.write_chunk(chunks[2])

    def test_write_after_finalize_rejected(self, tmp_path):
        trace, registry = build_fixture()
        chunks = list(iter_chunks(trace, 60))
        with ChunkedTraceWriter(tmp_path / "trace.npz") as writer:
            writer.write_chunk(chunks[0])
            writer.write_chunk(chunks[1])
            writer.finalize(trace.meta, registry)
            with pytest.raises(PipelineError, match="closed trace writer"):
                writer.write_chunk(TraceChunk.build(
                    2, np.zeros(0, np.int8), np.zeros(0, np.int64),
                    np.zeros(0, np.int64), np.zeros(0, np.int64),
                ))
