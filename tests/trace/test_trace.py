"""Tests for trace events, object registry, tracer, and persistence."""

import pytest

from repro.errors import TraceFormatError
from repro.minic.compiler import compile_source
from repro.trace import (
    EventKind,
    EventTrace,
    ObjectRegistry,
    load_trace,
    save_trace,
    trace_program,
)

SOURCE = """
int g;
int visits;

int leaf(int x) {
  int local;
  local = x * 2;
  visits = visits + 1;
  return local;
}

int main() {
  int i;
  int *block;
  block = malloc(8);
  for (i = 0; i < 3; i = i + 1) {
    g = leaf(i);
    block[0] = g;
  }
  block = realloc(block, 64);
  block[10] = 99;
  free(block);
  return g;
}
"""


@pytest.fixture(scope="module")
def traced():
    return trace_program(compile_source(SOURCE, "trace-test"))


class TestEventTrace:
    def test_append_and_iterate(self):
        trace = EventTrace("t")
        trace.append_install(1, 0x100, 0x110)
        trace.append_write(0x104, 0x108)
        trace.append_remove(1, 0x100, 0x110)
        events = list(trace)
        assert events[0] == (EventKind.INSTALL, 1, 0x100, 0x110)
        assert events[1] == (EventKind.WRITE, 0x104, 0x108, 0)
        assert events[2] == (EventKind.REMOVE, 1, 0x100, 0x110)

    def test_meta_counts(self):
        trace = EventTrace("t")
        trace.append_write(0, 4)
        trace.append_write(4, 8)
        trace.append_install(0, 0, 4)
        assert trace.meta.n_writes == 2
        assert trace.meta.n_installs == 1
        trace.validate()

    def test_validate_catches_corruption(self):
        trace = EventTrace("t")
        trace.append_write(0, 4)
        trace.meta.n_writes = 5
        with pytest.raises(TraceFormatError):
            trace.validate()

    def test_validate_rejects_bad_kind_byte(self):
        trace = EventTrace("t")
        trace.append_write(0, 4)
        trace.append_install(0, 0, 4)
        trace.kinds[1] = 77  # not an EventKind; e.g. a bit flip on disk
        trace.meta.n_installs -= 1
        trace.meta.n_writes += 1  # keep counts consistent: kind check must fire
        with pytest.raises(TraceFormatError, match="invalid event kind 77"):
            trace.validate()

    def test_validate_rejects_bad_kind_on_array_backing(self):
        import numpy as np

        trace = EventTrace("t")
        trace.append_write(0, 4)
        trace.append_write(4, 8)
        columns = trace.as_arrays()
        kinds = columns.kinds.copy()
        kinds[0] = -3
        meta = trace.meta
        adopted = EventTrace.from_arrays(
            kinds, columns.col_a, columns.col_b, columns.col_c, meta
        )
        with pytest.raises(TraceFormatError, match="invalid event kind -3"):
            adopted.validate()

    def test_as_arrays_from_arrays_roundtrip(self):
        trace = EventTrace("t")
        trace.append_install(1, 0x100, 0x110)
        trace.append_write(0x104, 0x108)
        trace.append_remove(1, 0x100, 0x110)
        columns = trace.as_arrays()
        adopted = EventTrace.from_arrays(
            columns.kinds, columns.col_a, columns.col_b, columns.col_c,
            trace.meta,
        )
        adopted.validate()
        assert [tuple(int(x) for x in e) for e in adopted] == \
            [tuple(int(x) for x in e) for e in trace]


class TestObjectRegistry:
    def test_local_descriptor_shared_across_instantiations(self):
        registry = ObjectRegistry()
        first = registry.local("f", "x", 4, False)
        second = registry.local("f", "x", 4, False)
        assert first is second

    def test_distinct_functions_distinct_locals(self):
        registry = ObjectRegistry()
        assert registry.local("f", "x", 4, False) is not registry.local("g", "x", 4, False)

    def test_heap_objects_always_fresh(self):
        registry = ObjectRegistry()
        first = registry.heap("f", ("main", "f"), 16)
        second = registry.heap("f", ("main", "f"), 16)
        assert first is not second
        assert first.name != second.name

    def test_qualified_names(self):
        registry = ObjectRegistry()
        assert registry.local("f", "x", 4, False).qualified_name == "f.x"
        assert registry.global_("g", 4).qualified_name == "g"

    def test_by_kind(self):
        registry = ObjectRegistry()
        registry.local("f", "x", 4, False)
        registry.global_("g", 4)
        registry.heap("f", ("f",), 8)
        assert len(registry.by_kind("local")) == 1
        assert len(registry.by_kind("heap")) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceFormatError):
            ObjectRegistry().by_kind("martian")


class TestTracer:
    def test_all_writes_recorded(self, traced):
        trace, registry, state = traced
        assert trace.meta.n_writes == state.stores

    def test_install_remove_balanced(self, traced):
        trace, registry, state = traced
        assert trace.meta.n_installs == trace.meta.n_removes

    def test_every_object_kind_present(self, traced):
        trace, registry, state = traced
        kinds = {obj.kind for obj in registry.objects}
        assert kinds == {"local", "global", "heap"}

    def test_local_installs_per_call(self, traced):
        trace, registry, state = traced
        leaf_local = next(
            obj for obj in registry.objects
            if obj.kind == "local" and obj.function == "leaf" and obj.name == "local"
        )
        installs = sum(
            1 for kind, a, b, c in trace
            if kind == EventKind.INSTALL and a == leaf_local.id
        )
        assert installs == 3  # leaf called three times

    def test_heap_context_captured(self, traced):
        trace, registry, state = traced
        heap_objects = registry.by_kind("heap")
        assert len(heap_objects) == 1  # realloc keeps identity
        assert heap_objects[0].context == ("main",)

    def test_realloc_reinstalls_same_object(self, traced):
        trace, registry, state = traced
        heap_id = registry.by_kind("heap")[0].id
        installs = [
            (b, c) for kind, a, b, c in trace
            if kind == EventKind.INSTALL and a == heap_id
        ]
        assert len(installs) == 2  # original malloc + realloc move
        assert installs[1][1] - installs[1][0] == 64

    def test_window_balance_per_object(self, traced):
        """Every install is eventually matched by a remove."""
        trace, registry, state = traced
        open_windows = {}
        for kind, a, b, c in trace:
            if kind == EventKind.INSTALL:
                open_windows[(a, b)] = open_windows.get((a, b), 0) + 1
            elif kind == EventKind.REMOVE:
                open_windows[(a, b)] -= 1
        assert all(count == 0 for count in open_windows.values())


class TestPersistence:
    def test_roundtrip(self, traced, tmp_path):
        trace, registry, state = traced
        path = tmp_path / "trace.npz"
        save_trace(trace, registry, path)
        loaded_trace, loaded_registry = load_trace(path)
        assert len(loaded_trace) == len(trace)
        assert list(loaded_trace) == list(trace)
        assert len(loaded_registry.objects) == len(registry.objects)
        assert loaded_trace.meta.cycles == trace.meta.cycles

    def test_registry_usable_after_load(self, traced, tmp_path):
        trace, registry, state = traced
        path = tmp_path / "trace.npz"
        save_trace(trace, registry, path)
        _, loaded = load_trace(path)
        obj = loaded.by_kind("heap")[0]
        assert obj.context == ("main",)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nope.npz")
