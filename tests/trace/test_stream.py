"""Tests for the chunked columnar trace stream.

Covers the in-memory half of the streaming pipeline
(:mod:`repro.trace.stream`): chunk framing and its failure modes
(checksum corruption, ragged columns, wrong dtypes, bad kind bytes),
the bounded producer/consumer channel (ordering, backpressure, error
propagation, consumer-side cancel), the chunk-emitting tracer against
the batch tracer on a real workload, fault injection at the streaming
faultpoints, and the docs-lint that keeps ``docs/TRACE_FORMAT.md``
honest.
"""

from __future__ import annotations

import importlib.util
import threading
import time
import zlib
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro import faults, observe
from repro.errors import PipelineError, TraceFormatError
from repro.trace import EventTrace
from repro.trace.events import EventKind, TraceMeta
from repro.trace.stream import (
    ChunkChannel,
    ChunkingTracer,
    TraceChunk,
    column_crc32,
    iter_chunks,
    note_retained_chunks,
    peak_resident_chunks,
    retained_chunks,
)
from repro.workloads import Workload, run_workload

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def clean_process_state():
    """No fault plan and a fresh observe registry around every test."""
    faults.clear_plan()
    observe.reset()
    yield
    faults.clear_plan()
    observe.reset()
    observe.disable()


def build_trace(n_events=100, seed=3):
    """A small mixed trace with deterministic contents."""
    rng = np.random.default_rng(seed)
    trace = EventTrace("stream-test")
    for i in range(n_events):
        roll = rng.integers(0, 3)
        base = int(rng.integers(0, 4096, dtype=np.int64))
        if roll == 0:
            trace.append_install(i % 7, base, base + 8)
        elif roll == 1:
            trace.append_remove(i % 7, base, base + 8)
        else:
            trace.append_write(base, base + 4)
    return trace


def make_chunk(seq=0, n=8):
    kinds = np.full(n, 3, dtype=np.int8)
    col_a = np.arange(n, dtype=np.int64)
    col_b = col_a + 4
    col_c = np.zeros(n, dtype=np.int64)
    return TraceChunk.build(seq, kinds, col_a, col_b, col_c)


class TestTraceChunk:
    def test_build_coerces_and_checksums(self):
        chunk = TraceChunk.build(0, [1, 3, 2], [0, 0x1000, 0],
                                 [0x1000, 0x1004, 0x1000],
                                 [0x1008, 0, 0x1008])
        assert chunk.kinds.dtype == np.int8
        assert chunk.col_a.dtype == np.int64
        assert chunk.n_events == 3
        # The checksums are plain CRC-32 over the raw little-endian bytes
        # (the worked example in docs/TRACE_FORMAT.md section 4).
        assert chunk.checksums[0] == zlib.crc32(bytes([1, 3, 2]))
        assert chunk.checksums == (0x3BA081CA, 0xE7A3556F,
                                   0x553E036A, 0xC485F7A9)
        chunk.verify()

    def test_column_crc32_matches_zlib(self):
        column = np.arange(5, dtype=np.int64)
        assert column_crc32(column) == zlib.crc32(column.tobytes()) & 0xFFFFFFFF

    def test_verify_detects_checksum_corruption(self):
        chunk = make_chunk()
        chunk.col_b[2] ^= 0x40  # a bit flip after the checksum was taken
        with pytest.raises(TraceFormatError, match="col_b checksum mismatch"):
            chunk.verify()

    def test_verify_detects_ragged_columns(self):
        chunk = make_chunk()
        bad = replace(chunk, col_c=chunk.col_c[:-1])
        with pytest.raises(TraceFormatError, match="ragged"):
            bad.verify()

    def test_verify_detects_wrong_dtype(self):
        chunk = make_chunk()
        bad = replace(chunk, col_a=chunk.col_a.astype(np.int32))
        with pytest.raises(TraceFormatError, match="dtype"):
            bad.verify()

    def test_verify_detects_bad_kind_byte(self):
        chunk = make_chunk()
        kinds = chunk.kinds.copy()
        kinds[3] = 77
        bad = TraceChunk.build(0, kinds, chunk.col_a, chunk.col_b,
                               chunk.col_c)
        with pytest.raises(TraceFormatError, match="invalid event kind 77"):
            bad.verify()

    def test_format_errors_are_pipeline_errors(self):
        # The acceptance bar is "a clear PipelineError": framing failures
        # must classify as fatal, not transient, in keep-going runs.
        assert issubclass(TraceFormatError, PipelineError)


class TestIterChunks:
    @pytest.mark.parametrize("chunk_events", [1, 7, 64, 1000])
    def test_concatenation_reconstructs_trace(self, chunk_events):
        trace = build_trace(100)
        chunks = list(iter_chunks(trace, chunk_events))
        assert [chunk.seq for chunk in chunks] == list(range(len(chunks)))
        for chunk in chunks:
            chunk.verify()
        columns = trace.as_arrays()
        joined = np.concatenate([chunk.kinds for chunk in chunks])
        assert np.array_equal(joined, columns.kinds)
        for field in ("col_a", "col_b", "col_c"):
            joined = np.concatenate(
                [getattr(chunk, field) for chunk in chunks]
            )
            assert np.array_equal(joined, getattr(columns, field))

    def test_sizes_and_tail(self):
        trace = build_trace(100)
        chunks = list(iter_chunks(trace, 30))
        assert [chunk.n_events for chunk in chunks] == [30, 30, 30, 10]

    def test_empty_trace_yields_no_chunks(self):
        trace = EventTrace("empty")
        assert list(iter_chunks(trace, 10)) == []

    def test_rejects_nonpositive_chunk_events(self):
        with pytest.raises(PipelineError):
            list(iter_chunks(build_trace(10), 0))


class TestChunkChannel:
    def test_in_order_round_trip(self):
        channel = ChunkChannel(capacity=8)
        chunks = [make_chunk(seq) for seq in range(3)]
        for chunk in chunks:
            channel.put(chunk)
        meta = TraceMeta(program="t")
        channel.close(meta=meta)
        received = list(channel)
        assert [chunk.seq for chunk in received] == [0, 1, 2]
        assert channel.meta is meta
        assert channel.chunks_in == 3
        assert channel.events_in == sum(c.n_events for c in chunks)

    def test_put_rejects_out_of_order(self):
        channel = ChunkChannel()
        channel.put(make_chunk(0))
        with pytest.raises(PipelineError, match="out of order"):
            channel.put(make_chunk(2))

    def test_consumer_detects_reordered_stream(self):
        # Bypass put()'s own guard to prove the consumer side checks too.
        channel = ChunkChannel()
        channel._queue.put(make_chunk(1))
        with pytest.raises(PipelineError, match="received out of order"):
            next(iter(channel))

    def test_producer_error_reaches_consumer_after_drain(self):
        channel = ChunkChannel()
        channel.put(make_chunk(0))
        boom = TraceFormatError("injected producer failure")
        channel.close(error=boom)
        iterator = iter(channel)
        assert next(iterator).seq == 0
        with pytest.raises(TraceFormatError, match="injected producer"):
            next(iterator)

    def test_close_twice_and_put_after_close_raise(self):
        channel = ChunkChannel()
        channel.close()
        with pytest.raises(PipelineError, match="closed twice"):
            channel.close()
        with pytest.raises(PipelineError, match="closed"):
            channel.put(make_chunk(0))

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(PipelineError):
            ChunkChannel(capacity=0)

    def test_backpressure_blocks_producer(self):
        channel = ChunkChannel(capacity=1)
        channel.put(make_chunk(0))  # fills the queue
        second_done = threading.Event()

        def produce():
            channel.put(make_chunk(1))  # must block until a get()
            second_done.set()

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        assert not second_done.wait(0.1)
        iterator = iter(channel)
        assert next(iterator).seq == 0
        assert second_done.wait(5.0)
        producer.join(5.0)

    def test_cancel_releases_blocked_producer(self):
        channel = ChunkChannel(capacity=1)
        channel.put(make_chunk(0))
        outcome = {}

        def produce():
            try:
                channel.put(make_chunk(1))  # blocks on the full queue
                channel.put(make_chunk(2))  # raises: channel cancelled
            except PipelineError as exc:
                outcome["error"] = exc

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        time.sleep(0.05)
        channel.cancel()
        producer.join(5.0)
        assert not producer.is_alive()
        assert "cancelled" in str(outcome["error"])

    def test_counters_and_peak_gauge(self):
        observe.enable()
        channel = ChunkChannel(capacity=8)
        for seq in range(3):
            channel.put(make_chunk(seq, n=5))
        channel.close()
        list(channel)
        snapshot = observe.get_registry().snapshot()
        assert snapshot["counters"]["stream.chunks"] == 3
        assert snapshot["counters"]["stream.events"] == 15
        assert snapshot["gauges"]["stream.peak_resident_chunks"] == 3
        assert peak_resident_chunks() == 3
        # The gauge is process-wide state: observe.reset() must clear it.
        observe.reset()
        assert peak_resident_chunks() == 0

    def test_retained_chunks_fold_into_peak(self):
        """Consumer-retained chunk state counts toward the bounded-memory
        gauge: queued + retained is what the peak tracks."""
        observe.enable()
        observe.reset()
        channel = ChunkChannel(capacity=8)
        for seq in range(2):
            channel.put(make_chunk(seq, n=5))
        assert peak_resident_chunks() == 2
        note_retained_chunks(1)
        note_retained_chunks(1)
        assert retained_chunks() == 2
        assert peak_resident_chunks() == 4  # 2 queued + 2 retained
        snapshot = observe.get_registry().snapshot()
        assert snapshot["gauges"]["stream.retained_chunks"] == 2
        assert snapshot["gauges"]["stream.peak_resident_chunks"] == 4
        note_retained_chunks(-2)
        assert retained_chunks() == 0
        channel.close()
        list(channel)
        # Releases never lower the high-water mark...
        assert peak_resident_chunks() == 4
        # ...and reset clears both legs.
        observe.reset()
        assert peak_resident_chunks() == 0
        assert retained_chunks() == 0

    def test_vector_stream_reports_retained_feeds(self):
        """Sub-kernel-size batches buffered by the NumPy simulation
        stream are visible to the gauge while held."""
        from repro.simulate.vector_engine import VectorSimulationStream
        from repro.trace.objects import ObjectRegistry
        from repro.sessions.types import SessionDef, ONE_HEAP

        observe.enable()
        observe.reset()
        registry = ObjectRegistry()
        registry.heap("f", ("main", "f"), 16)
        sessions = [SessionDef(0, ONE_HEAP, "s0", (0,))]
        stream = VectorSimulationStream(registry, sessions, (4096,))
        kinds = np.full(8, int(EventKind.WRITE), np.int8)
        addrs = np.arange(8, dtype=np.int64) * 4
        stream.feed(kinds, addrs, addrs + 4, np.zeros(8, np.int64))
        assert retained_chunks() == 1
        stream.feed(kinds, addrs, addrs + 4, np.zeros(8, np.int64))
        assert retained_chunks() == 2
        assert peak_resident_chunks() == 2
        stream.finish(TraceMeta(), expected_events=16)
        # finish() flushes the coalescing buffer and releases the hold.
        assert retained_chunks() == 0
        observe.reset()


class StreamWorkload(Workload):
    """Tiny but heap- and call-heavy program for tracer equivalence."""

    name = "stream-mini"
    default_scale = 1
    smoke_scale = 1

    def source(self, scale):
        return """
        int g;

        int leaf(int x) {
          int local;
          local = x * 2;
          g = g + local;
          return local;
        }

        int main() {
          int i;
          int *block;
          block = malloc(16);
          for (i = 0; i < 12; i = i + 1) {
            block[i % 4] = leaf(i);
          }
          block = realloc(block, 64);
          free(block);
          return g;
        }
        """


class TestChunkingTracer:
    def test_chunks_reconstruct_batch_trace(self):
        workload = StreamWorkload()
        batch = run_workload(workload, 1)
        chunks = []
        streamed = run_workload(workload, 1, chunk_sink=chunks.append,
                                chunk_events=16)
        # The streamed run returns an *empty* trace whose meta carries
        # the authoritative totals.
        assert len(streamed.trace) == 0
        assert vars(streamed.trace.meta) == vars(batch.trace.meta)
        assert [chunk.seq for chunk in chunks] == list(range(len(chunks)))
        assert len(chunks) > 1
        for chunk in chunks:
            chunk.verify()
        batch_columns = batch.trace.as_arrays()
        for field, batch_column in zip(batch_columns._fields, batch_columns):
            joined = np.concatenate(
                [getattr(chunk, field) for chunk in chunks]
            )
            assert np.array_equal(joined, np.asarray(batch_column)), field
        total = sum(chunk.n_events for chunk in chunks)
        meta = streamed.trace.meta
        assert total == meta.n_writes + meta.n_installs + meta.n_removes
        # Registries must agree object for object.
        assert [vars(obj) for obj in streamed.registry.objects] == \
            [vars(obj) for obj in batch.registry.objects]

    def test_chunk_sizes_approximate_threshold(self):
        chunks = []
        run_workload(StreamWorkload(), 1, chunk_sink=chunks.append,
                     chunk_events=16)
        # Flushing happens per event hook, so chunks may exceed the
        # threshold by one hook's worth of events, never wildly.
        for chunk in chunks[:-1]:
            assert 16 <= chunk.n_events < 16 + 64

    def test_rejects_nonpositive_chunk_events(self):
        with pytest.raises(PipelineError):
            run_workload(StreamWorkload(), 1, chunk_sink=lambda c: None,
                         chunk_events=0)


class TestStreamFaultpoints:
    def test_injected_emit_fault_fires_on_put(self):
        faults.install("stream.emit:fatal")
        channel = ChunkChannel()
        with pytest.raises(PipelineError):
            channel.put(make_chunk(0))

    def test_injected_emit_fault_targets_later_chunk(self):
        faults.install("stream.emit:fatal@3")
        channel = ChunkChannel(capacity=8)
        channel.put(make_chunk(0))
        channel.put(make_chunk(1))
        with pytest.raises(PipelineError):
            channel.put(make_chunk(2))

    def test_injected_spill_fault_aborts_writer(self, tmp_path):
        from repro.trace.tracefile import ChunkedTraceWriter

        faults.install("stream.spill:corrupt")
        dest = tmp_path / "trace.npz"
        with pytest.raises(faults.InjectedCorruption):
            with ChunkedTraceWriter(dest) as writer:
                writer.write_chunk(make_chunk(0))
        # The writer aborted: no partial file published.
        assert not dest.exists()
        assert list(tmp_path.iterdir()) == []


class TestDocsLint:
    def test_trace_format_doc_matches_implementation(self):
        """Tier-1 wiring for tools/lint_trace_format.py (the docs-lint)."""
        lint_path = REPO_ROOT / "tools" / "lint_trace_format.py"
        spec = importlib.util.spec_from_file_location(
            "lint_trace_format", lint_path
        )
        lint = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(lint)
        doc = (REPO_ROOT / "docs" / "TRACE_FORMAT.md").read_text(
            encoding="utf-8"
        )
        assert lint.check(doc) == []
        # A drifted doc is detected, and --write would repair it.
        drifted = doc.replace("| `WRITE` | 3 |", "| `WRITE` | 9 |")
        assert lint.check(drifted) == ["kind-table"]
        assert lint.check(lint.write(drifted)) == []
