"""Shared-memory trace plane: publish/attach round-trip and lifecycle.

The zero-copy data plane must be byte-exact (workers simulate the very
same columns the parent loaded), picklable in the small (the handle
crosses the pool boundary, the megabytes do not), and leak-proof (the
owner's ``close`` is idempotent and reclaims the segment on every
path).  Cross-process behaviour under crashes is certified separately
by the chaos suite in ``tests/faults/``.
"""

from __future__ import annotations

import glob
import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.trace import EventTrace, ObjectRegistry, publish_trace
from repro.trace.shared import (
    SEGMENT_PREFIX,
    _layout,
    _pid_alive,
    _segment_pid,
    reap_stale_segments,
)


def build_trace(n_writes: int = 500):
    registry = ObjectRegistry()
    registry.heap("f", ("main", "f"), 16)
    trace = EventTrace("shared-test")
    trace.append_install(0, 0x1000, 0x1010)
    for i in range(n_writes):
        trace.append_write(0x1000 + 4 * (i % 8), 0x1004 + 4 * (i % 8))
    trace.append_remove(0, 0x1000, 0x1010)
    return trace, registry


def segments():
    return glob.glob("/dev/shm/repro-trace-*")


class TestLayout:
    def test_column_offsets_are_8_aligned(self):
        for n in (0, 1, 7, 8, 9, 1000, 4097):
            kinds_off, a_off, b_off, c_off, total = _layout(n)
            assert kinds_off == 0
            assert a_off % 8 == 0 and b_off % 8 == 0 and c_off % 8 == 0
            assert a_off >= n
            assert total == c_off + 8 * n

    def test_total_covers_all_columns(self):
        _, a, b, c, total = _layout(100)
        assert b - a == 800 and c - b == 800 and total - c == 800


class TestRoundTrip:
    def test_attached_columns_bit_identical(self):
        trace, registry = build_trace()
        owner = publish_trace(trace, registry)
        try:
            attached = owner.handle.attach()
            want, got = trace.as_arrays(), attached.trace.as_arrays()
            assert np.array_equal(want.kinds, got.kinds)
            assert np.array_equal(want.col_a, got.col_a)
            assert np.array_equal(want.col_b, got.col_b)
            assert np.array_equal(want.col_c, got.col_c)
            assert len(attached.trace) == len(trace)
            assert attached.trace.meta.program == "shared-test"
            assert (attached.registry.get(0).qualified_name
                    == registry.get(0).qualified_name)
            del want, got
            attached.close()
        finally:
            owner.close()

    def test_handle_is_small_and_picklable(self):
        # The whole point: the handle crosses the pool pickled, the
        # event columns do not.  A serialized handle must stay tiny
        # regardless of trace size.
        trace, registry = build_trace(n_writes=20_000)
        owner = publish_trace(trace, registry)
        try:
            blob = pickle.dumps(owner.handle)
            assert len(blob) < 8192, len(blob)
            handle = pickle.loads(blob)
            attached = handle.attach()
            assert np.array_equal(
                trace.as_arrays().col_a, attached.trace.as_arrays().col_a
            )
            attached.close()
        finally:
            owner.close()

    def test_segment_name_is_auditable(self):
        trace, registry = build_trace()
        owner = publish_trace(trace, registry)
        try:
            assert owner.name.startswith("repro-trace-")
            assert any(owner.name in s for s in segments())
        finally:
            owner.close()
        assert not any(owner.name in s for s in segments())


class TestLifecycle:
    def test_owner_close_is_idempotent(self):
        trace, registry = build_trace()
        owner = publish_trace(trace, registry)
        owner.close()
        owner.close()  # must not raise

    def test_attach_after_release_raises(self):
        # A worker landing after the parent released the segment gets a
        # clean exception and falls back to the disk cache.
        trace, registry = build_trace()
        owner = publish_trace(trace, registry)
        handle = owner.handle
        owner.close()
        with pytest.raises(FileNotFoundError):
            handle.attach()

    def test_attached_close_tolerates_live_views(self):
        # A worker that (wrongly) keeps a NumPy view alive must not
        # crash on close; the mapping is reclaimed at process exit.
        trace, registry = build_trace()
        owner = publish_trace(trace, registry)
        try:
            attached = owner.handle.attach()
            view = attached.trace.as_arrays().col_a
            attached.close()  # BufferError swallowed
            assert view[0] != -1  # view still readable
            del view
            attached._shm.close()  # now unpinned; release the mapping
        finally:
            owner.close()

    def test_size_mismatch_rejected(self):
        # A handle lying about n_events (stale pickle, truncated
        # segment) must fail loudly, not read out of bounds.
        trace, registry = build_trace()
        owner = publish_trace(trace, registry)
        try:
            import dataclasses

            bad = dataclasses.replace(owner.handle,
                                      n_events=owner.handle.n_events * 100)
            with pytest.raises(ValueError, match="bytes"):
                bad.attach()
        finally:
            owner.close()

    def test_publish_failure_leaves_no_segment(self, monkeypatch):
        # Force a failure *after* segment creation (mismatched column
        # lengths make the copy raise): the half-built segment must be
        # unlinked before the exception propagates.
        import types

        trace, registry = build_trace()
        good = trace.as_arrays()
        bad = types.SimpleNamespace(
            kinds=good.kinds[:-1], col_a=good.col_a,
            col_b=good.col_b, col_c=good.col_c,
        )
        monkeypatch.setattr(type(trace), "as_arrays", lambda self: bad)
        before = set(segments())
        with pytest.raises(ValueError):
            publish_trace(trace, registry)
        assert set(segments()) == before


def dead_pid() -> int:
    """A pid guaranteed to belong to no live process (just reaped)."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestOrphanReaper:
    """Startup sweep for segments leaked by SIGKILLed runs.

    A publisher killed between ``publish_trace`` and its ``finally``
    leaks the segment forever — no process remains to unlink it.  The
    reaper runs at scheduler start and reclaims exactly the segments
    whose embedded owner pid is dead.
    """

    def test_segment_pid_parsing(self):
        assert _segment_pid("repro-trace-1234-abcd", "repro-trace-") == 1234
        assert _segment_pid("repro-trace-77", "repro-trace-") == 77
        assert _segment_pid("psm_4fe2b", "repro-trace-") is None
        assert _segment_pid("repro-trace-xyz-1", "repro-trace-") is None
        assert _segment_pid("repro-trace--5-a", "repro-trace-") is None

    def test_pid_liveness(self):
        assert _pid_alive(os.getpid())
        assert _pid_alive(1)  # init: alive, not ours (EPERM as non-root)
        assert not _pid_alive(dead_pid())

    def test_reaps_only_dead_owners(self, tmp_path):
        gone = dead_pid()
        orphan = tmp_path / f"{SEGMENT_PREFIX}{gone}-deadbeef"
        orphan.write_bytes(b"x" * 64)
        own = tmp_path / f"{SEGMENT_PREFIX}{os.getpid()}-cafecafe"
        own.write_bytes(b"x" * 64)
        live = tmp_path / f"{SEGMENT_PREFIX}1-00000001"
        live.write_bytes(b"x" * 64)
        unrelated = tmp_path / "psm_something"
        unrelated.write_bytes(b"x" * 64)
        unparsable = tmp_path / f"{SEGMENT_PREFIX}notapid-ffff"
        unparsable.write_bytes(b"x" * 64)

        assert reap_stale_segments(shm_dir=tmp_path) == 1
        assert not orphan.exists()
        assert own.exists() and live.exists()
        assert unrelated.exists() and unparsable.exists()
        # Second sweep: nothing left to reap (idempotent).
        assert reap_stale_segments(shm_dir=tmp_path) == 0

    def test_missing_shm_dir_is_harmless(self, tmp_path):
        assert reap_stale_segments(shm_dir=tmp_path / "no-such-dir") == 0

    def test_live_publisher_survives_a_sweep(self, tmp_path):
        # End to end against the real /dev/shm layout: a segment we own
        # (live pid) must survive, a copy attributed to a dead pid must
        # not.
        trace, registry = build_trace()
        owner = publish_trace(trace, registry)
        try:
            fake = tmp_path / owner.name.replace(
                str(os.getpid()), str(dead_pid()), 1
            )
            fake.write_bytes(b"x" * 64)
            reaped = reap_stale_segments(shm_dir=tmp_path)
            assert reaped == (1 if fake.name != owner.name else 0)
            assert any(owner.name in s for s in segments())
        finally:
            owner.close()
