"""Tests for statistics, table/figure rendering, and comparison."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    OverheadStats,
    compute_stats,
    render_bar_chart,
    render_table,
    trimmed_mean,
)
from repro.analysis.compare import compare_table4, shape_checks
from repro.analysis.figures import FigureSeries, figure_from_table4
from repro.analysis.stats import percentile
from repro.analysis.tables import render_table1, render_table4
from repro.errors import PipelineError
from repro.models.paper_data import TABLE_4


class TestStats:
    def test_basic_summary(self):
        stats = compute_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.min == 1.0
        assert stats.max == 5.0
        assert stats.mean == 3.0
        assert stats.n_sessions == 5

    def test_t_mean_excludes_tails(self):
        values = [0.0] + [10.0] * 98 + [1000.0]
        stats = compute_stats(values)
        assert stats.t_mean == pytest.approx(10.0)
        assert stats.mean > 10.0

    def test_t_mean_degenerate_small_sample(self):
        assert trimmed_mean([5.0, 7.0]) == 6.0

    def test_t_mean_constant_distribution(self):
        assert trimmed_mean([3.0] * 50) == 3.0

    def test_percentiles_ordered(self):
        stats = compute_stats(list(range(100)))
        assert stats.p90 <= stats.p98 <= stats.max

    def test_empty_rejected(self):
        with pytest.raises(PipelineError):
            compute_stats([])
        with pytest.raises(PipelineError):
            trimmed_mean([])
        with pytest.raises(PipelineError):
            percentile([], 50)

    @given(st.lists(st.floats(0, 1e6), min_size=3, max_size=200))
    def test_t_mean_between_min_and_max(self, values):
        t = trimmed_mean(values)
        assert min(values) - 1e-9 <= t <= max(values) + 1e-9

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
    def test_stats_invariants(self, values):
        stats = compute_stats(values)
        ulp = 1e-9 * max(abs(stats.max), 1.0)  # summation rounding slack
        assert stats.min - ulp <= stats.mean <= stats.max + ulp
        assert stats.min - ulp <= stats.p90 <= stats.p98 <= stats.max + ulp


class TestTableRendering:
    def test_generic_table_alignment(self):
        text = render_table(["A", "Long"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len({len(line) for line in lines[:1] + lines[2:]}) == 1

    def test_table1_contains_programs(self):
        rows = {
            "gcc": {
                "OneLocalAuto": 1, "AllLocalInFunc": 2, "OneGlobalStatic": 3,
                "OneHeap": 4, "AllHeapInFunc": 5, "execution_ms": 123.4,
            }
        }
        text = render_table1(rows)
        assert "gcc" in text and "123.4" in text

    def test_table4_layout(self):
        stats = OverheadStats(10, 0.0, 5.0, 1.0, 2.0, 3.0, 4.0)
        text = render_table4({"gcc": {"NH": stats, "CP": stats}})
        assert "Min | Max" in text
        assert "T-Mean | Mean" in text
        assert text.count("gcc") == 1


class TestFigures:
    def test_bar_chart_renders_all_values(self):
        series = FigureSeries("Figure X")
        series.values["gcc"] = {"NH": 0.5, "CP": 100.0}
        text = render_bar_chart(series)
        assert "0.50x" in text and "100.00x" in text

    def test_log_scale_monotone(self):
        series = FigureSeries("F")
        series.values["p"] = {"A": 1.0, "B": 10.0, "C": 100.0}
        text = render_bar_chart(series)
        lengths = [line.count("#") for line in text.splitlines() if "#" in line]
        assert lengths == sorted(lengths)

    def test_empty_series(self):
        assert "(no data)" in render_bar_chart(FigureSeries("F"))

    def test_figure_from_table4(self):
        stats = OverheadStats(10, 0.0, 5.0, 1.0, 2.0, 3.0, 4.0)
        series = figure_from_table4({"gcc": {"NH": stats}}, "max", "t")
        assert series.values["gcc"]["NH"] == 5.0


def _paper_as_stats():
    return {
        program: {
            label: OverheadStats(
                n_sessions=0, min=s.min, max=s.max, t_mean=s.t_mean,
                mean=s.mean, p90=s.p90, p98=s.p98,
            )
            for label, s in row.items()
        }
        for program, row in TABLE_4.items()
    }


class TestCompare:
    def test_shape_checks_pass_on_papers_own_table4(self):
        """The qualitative claims must hold on the paper's published data
        (this is what calibrates the thresholds)."""
        for check in shape_checks(_paper_as_stats()):
            assert check.holds, check.claim

    def test_identical_data_gives_unit_ratios(self):
        rows = compare_table4(_paper_as_stats())
        nonzero = [row for row in rows if row.paper != 0]
        assert nonzero
        assert all(row.ratio == pytest.approx(1.0) for row in nonzero)

    def test_zero_paper_cells_handled(self):
        rows = compare_table4(_paper_as_stats())
        zero_cells = [row for row in rows if row.paper == 0]
        for row in zero_cells:
            assert row.ratio == 1.0 or math.isinf(row.ratio)

    def test_unknown_program_skipped(self):
        stats = OverheadStats(1, 0, 0, 0, 0, 0, 0)
        rows = compare_table4({"mystery": {"NH": stats}})
        assert rows == []
