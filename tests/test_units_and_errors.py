"""Tests for the units/conversion helpers and the error hierarchy."""

import pytest
from hypothesis import given, strategies as st

from repro import errors
from repro.units import (
    CLOCK_HZ,
    CYCLES_PER_US,
    align_down,
    align_up,
    cycles_to_ms,
    cycles_to_us,
    is_power_of_two,
    ms_to_cycles,
    us_to_cycles,
)


class TestConversions:
    def test_clock_is_40mhz(self):
        assert CLOCK_HZ == 40_000_000
        assert CYCLES_PER_US == 40

    @pytest.mark.parametrize("us,cycles", [(131, 5240), (561, 22440), (2.75, 110)])
    def test_table2_conversions(self, us, cycles):
        assert us_to_cycles(us) == cycles
        assert cycles_to_us(cycles) == pytest.approx(us)

    def test_ms_roundtrip(self):
        assert cycles_to_ms(ms_to_cycles(3.5)) == pytest.approx(3.5)

    @given(st.integers(0, 10**6))
    def test_us_roundtrip_integer(self, us):
        assert cycles_to_us(us_to_cycles(us)) == us


class TestAlignment:
    @given(st.integers(0, 2**30), st.sampled_from([4, 8, 4096, 8192]))
    def test_align_bounds(self, address, alignment):
        down = align_down(address, alignment)
        up = align_up(address, alignment)
        assert down <= address <= up
        assert down % alignment == 0
        assert up % alignment == 0
        assert up - down in (0, alignment)

    def test_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-8)


class TestErrorHierarchy:
    def test_everything_is_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_memory_fault_formats_address(self):
        fault = errors.MemoryFault(0xDEAD0, "poked")
        assert "0xdead0" in str(fault)
        assert fault.reason == "poked"

    def test_alignment_is_memory_fault(self):
        assert issubclass(errors.AlignmentFault, errors.MemoryFault)

    def test_minic_error_carries_line(self):
        error = errors.ParseError("oops", line=12)
        assert "line 12" in str(error)
        assert error.line == 12

    def test_subsystem_bases(self):
        assert issubclass(errors.StackOverflow, errors.MachineError)
        assert issubclass(errors.MonitorNotFound, errors.WmsError)
        assert issubclass(errors.SymbolNotFound, errors.DebuggerError)
        assert issubclass(errors.TraceFormatError, errors.PipelineError)
