"""Tests for the simulated OS: fault delivery, mprotect, timers."""

import pytest

from repro.errors import BadSyscall, UnhandledFault
from repro.machine import Cpu, Memory
from repro.machine.paging import Protection
from repro.machine.traps import TrapFrame, TrapKind
from repro.sim_os import Signal, SimOs, signal_for_trap
from repro.sim_os.costs import SPARCSTATION_2, KernelCosts
from repro.units import us_to_cycles


@pytest.fixture
def os_and_cpu():
    cpu = Cpu(Memory())
    return SimOs(cpu), cpu


class TestSignalMapping:
    def test_write_fault_is_sigsegv(self):
        assert signal_for_trap(TrapKind.WRITE_FAULT) is Signal.SIGSEGV

    def test_trap_instr_is_sigtrap(self):
        assert signal_for_trap(TrapKind.TRAP_INSTR) is Signal.SIGTRAP

    def test_monitor_fault_is_sigmon(self):
        assert signal_for_trap(TrapKind.MONITOR_FAULT) is Signal.SIGMON


class TestDelivery:
    def test_handler_receives_frame(self, os_and_cpu):
        os, cpu = os_and_cpu
        seen = []
        os.sigaction(Signal.SIGSEGV, lambda frame, c: seen.append(frame))
        frame = TrapFrame(TrapKind.WRITE_FAULT, pc=7, address=0x100, value=1)
        os.deliver(frame, cpu)
        assert seen == [frame]
        assert os.counters["faults_delivered"] == 1

    def test_unhandled_fault_raises(self, os_and_cpu):
        os, cpu = os_and_cpu
        with pytest.raises(UnhandledFault):
            os.deliver(TrapFrame(TrapKind.WRITE_FAULT, pc=0, address=0), cpu)

    def test_removing_handler(self, os_and_cpu):
        os, cpu = os_and_cpu
        os.sigaction(Signal.SIGTRAP, lambda frame, c: None)
        os.sigaction(Signal.SIGTRAP, None)
        with pytest.raises(UnhandledFault):
            os.deliver(TrapFrame(TrapKind.TRAP_INSTR, pc=0, address=0), cpu)

    @pytest.mark.parametrize(
        "kind,cost_attr",
        [
            (TrapKind.MONITOR_FAULT, "monitor_fault_delivery"),
            (TrapKind.WRITE_FAULT, "write_fault_delivery"),
            (TrapKind.TRAP_INSTR, "trap_delivery"),
        ],
    )
    def test_delivery_charges_calibrated_cost(self, os_and_cpu, kind, cost_attr):
        os, cpu = os_and_cpu
        os.sigaction(signal_for_trap(kind), lambda frame, c: None)
        before = cpu.cycles
        os.deliver(TrapFrame(kind, pc=0, address=0x200), cpu)
        assert cpu.cycles - before == getattr(os.costs, cost_attr)


class TestEmulate:
    def test_emulate_performs_store(self, os_and_cpu):
        os, cpu = os_and_cpu
        frame = TrapFrame(
            TrapKind.WRITE_FAULT, pc=0, address=0x0010_0000, value=9,
            store_operands=(0x0010_0000, 9),
        )
        os.emulate(frame, cpu)
        assert cpu.memory.load_word(0x0010_0000) == 9
        assert os.counters["stores_emulated"] == 1

    def test_emulate_charges_cost(self, os_and_cpu):
        os, cpu = os_and_cpu
        frame = TrapFrame(
            TrapKind.TRAP_INSTR, pc=0, address=0x0010_0000, value=1,
            store_operands=(0x0010_0000, 1),
        )
        before = cpu.cycles
        os.emulate(frame, cpu)
        assert cpu.cycles - before == os.costs.emulate_store

    def test_emulate_without_operands_rejected(self, os_and_cpu):
        os, cpu = os_and_cpu
        with pytest.raises(BadSyscall):
            os.emulate(TrapFrame(TrapKind.WRITE_FAULT, pc=0, address=0x100), cpu)


class TestMprotect:
    def test_protect_sets_pages(self, os_and_cpu):
        os, cpu = os_and_cpu
        os.mprotect(0x0010_0000, 8192, Protection.READ)
        assert cpu.page_table.is_write_protected(0x0010_0000)
        assert cpu.page_table.is_write_protected(0x0010_1000)
        assert not cpu.page_table.is_write_protected(0x0010_2000)

    def test_unprotect_clears_pages(self, os_and_cpu):
        os, cpu = os_and_cpu
        os.mprotect(0x0010_0000, 4096, Protection.READ)
        os.mprotect(0x0010_0000, 4096, Protection.READ_WRITE)
        assert not cpu.page_table.is_write_protected(0x0010_0000)

    def test_asymmetric_costs_per_appendix_a3(self, os_and_cpu):
        """Unprotecting is much slower than protecting (paper A.3)."""
        os, cpu = os_and_cpu
        before = cpu.cycles
        os.mprotect(0x0010_0000, 4096, Protection.READ)
        protect_cost = cpu.cycles - before
        before = cpu.cycles
        os.mprotect(0x0010_0000, 4096, Protection.READ_WRITE)
        unprotect_cost = cpu.cycles - before
        assert protect_cost == us_to_cycles(80)
        assert unprotect_cost == us_to_cycles(299)

    def test_zero_length_rejected(self, os_and_cpu):
        os, _ = os_and_cpu
        with pytest.raises(BadSyscall):
            os.mprotect(0x0010_0000, 0, Protection.READ)

    def test_protect_pages_empty_list_free(self, os_and_cpu):
        os, cpu = os_and_cpu
        before = cpu.cycles
        os.protect_pages([], Protection.READ)
        assert cpu.cycles == before
        assert os.counters["mprotect_calls"] == 0


class TestTimer:
    def test_cumulative_intervals(self, os_and_cpu):
        os, cpu = os_and_cpu
        timer = os.getrusage_timer()
        timer.on()
        cpu.cycles += 100
        timer.off()
        cpu.cycles += 999  # not timed
        timer.on()
        cpu.cycles += 50
        timer.off()
        assert timer.cycles == 150

    def test_running_timer_reads_live(self, os_and_cpu):
        os, cpu = os_and_cpu
        timer = os.getrusage_timer()
        timer.on()
        cpu.cycles += 40
        assert timer.cycles == 40

    def test_double_on_is_idempotent(self, os_and_cpu):
        os, cpu = os_and_cpu
        timer = os.getrusage_timer()
        timer.on()
        timer.on()
        cpu.cycles += 10
        timer.off()
        assert timer.cycles == 10

    def test_microseconds_conversion(self, os_and_cpu):
        os, cpu = os_and_cpu
        timer = os.getrusage_timer()
        timer.on()
        cpu.cycles += 40
        timer.off()
        assert timer.microseconds == 1.0


class TestCalibration:
    """The kernel cost model must reproduce the paper's composites."""

    def test_nh_composite_is_131us(self):
        assert SPARCSTATION_2.nh_fault_handler == us_to_cycles(131)

    def test_tp_composite_is_102us(self):
        assert SPARCSTATION_2.tp_fault_handler == us_to_cycles(102)

    def test_vm_composite_is_561us(self):
        assert SPARCSTATION_2.vm_fault_handler == us_to_cycles(561)

    def test_custom_cost_model(self):
        costs = KernelCosts(trap_delivery=100, emulate_store=50)
        assert costs.tp_fault_handler == 150
