"""Crash-safe runs, certified the hard way: kill the process at every
new faultpoint, then prove ``--resume`` converges.

Each scenario runs the real CLI in a subprocess with a deterministic
fault plan that SIGKILLs (or signals) the run mid-flight, then resumes
the journaled run and asserts the three invariants of the recovery
design:

* the resumed run exits 0 and its report is **bit-identical** to an
  uninterrupted run's;
* at least one task was **skipped** (journaled done + store-verified),
  visible as the manifest's ``resume.tasks_skipped`` gauge;
* ``store verify`` finds **zero corrupt entries** — atomic publishes
  mean a kill never tears a cache entry.

Graceful-shutdown scenarios additionally pin the exit code
(``128 + signum``), the journal's ``interrupted`` seal, and the black
box dump.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src"
PROGRAMS = ("gcc", "qcd")


def run_cli(cache_dir, extra, check=False, env=None):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "table4",
         "--scale", "smoke", "--programs", *PROGRAMS,
         "--cache-dir", str(cache_dir), "--quiet"] + extra,
        capture_output=True, text=True, timeout=120,
        env={**os.environ, "PYTHONPATH": str(SRC), **(env or {})},
    )
    if check:
        assert proc.returncode == 0, proc.stderr
    return proc


def journal_lines(cache_dir, run_id):
    path = Path(cache_dir) / "runs" / f"{run_id}.journal.jsonl"
    return [json.loads(line)
            for line in path.read_text().splitlines() if line.strip()]


@pytest.fixture(scope="module")
def clean_report(tmp_path_factory):
    """The reference report of an uninterrupted run (own cache)."""
    tmp = tmp_path_factory.mktemp("clean")
    out = tmp / "clean.txt"
    run_cli(tmp / "cache", ["--out", str(out)], check=True)
    return out.read_bytes()


def assert_resume_converges(tmp_path, cache, run_id, clean_report):
    """Resume ``run_id``, then check all three recovery invariants."""
    out = tmp_path / "resumed.txt"
    manifest = tmp_path / "resumed.json"
    resumed = run_cli(cache, ["--resume", run_id, "--out", str(out),
                              "--manifest", str(manifest)])
    assert resumed.returncode == 0, resumed.stderr
    assert out.read_bytes() == clean_report
    gauges = json.loads(manifest.read_text())["gauges"]
    assert gauges["resume.tasks_skipped"] >= 1
    assert gauges["resume.tasks_skipped"] + gauges["resume.tasks_replayed"] \
        == len(PROGRAMS)
    verify = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "store", "verify",
         "--cache-dir", str(cache), "--json"],
        capture_output=True, text=True, env={"PYTHONPATH": str(SRC)},
    )
    assert verify.returncode == 0, verify.stdout + verify.stderr
    assert json.loads(verify.stdout)["counts"]["corrupt"] == 0
    return gauges


class TestKillAndResume:
    @pytest.mark.parametrize("fault", [
        # 4th append = qcd's intent: gcc is journaled done, qcd is not.
        "journal.append:crash@4",
        # 2nd sim publish = qcd's: gcc's entry is on disk and journaled.
        "store.publish:crash@2",
    ])
    def test_sigkill_mid_run_then_resume(self, fault, tmp_path,
                                         clean_report):
        cache = tmp_path / "cache"
        crashed = run_cli(cache, ["--run-id", "r1", "--retries", "0",
                                  "--inject-faults", fault])
        assert crashed.returncode == -signal.SIGKILL
        kinds = [(r["kind"], r.get("program")) for r in
                 journal_lines(cache, "r1")]
        assert ("task.done", "gcc") in kinds      # write-ahead held up
        assert ("run.seal", None) not in kinds    # died unsealed
        assert_resume_converges(tmp_path, cache, "r1", clean_report)

    def test_sigkill_on_warm_load_then_resume(self, tmp_path, clean_report):
        # Crash while *reading* a verified entry: the second run dies on
        # qcd's warm load; its journal still lets gcc skip.
        cache = tmp_path / "cache"
        run_cli(cache, ["--run-id", "r1"], check=True)
        crashed = run_cli(cache, ["--run-id", "r2", "--retries", "0",
                                  "--inject-faults", "store.load:crash@2"])
        assert crashed.returncode == -signal.SIGKILL
        gauges = assert_resume_converges(tmp_path, cache, "r2", clean_report)
        # gcc's completion was journaled before the crash and skips;
        # qcd died mid-load (no done record) and re-executes.
        assert gauges["resume.tasks_skipped"] == 1

    def test_hard_worker_kill_poisons_siblings_but_resume_converges(
            self, tmp_path, clean_report):
        # A straight SIGKILL breaks the whole pool: with retries
        # exhausted *both* in-flight programs fail, the run exits 6 with
        # a sealed journal, and resume re-executes everything (nothing
        # completed, so nothing can be skipped) — still bit-identical.
        cache = tmp_path / "cache"
        failed = run_cli(cache, ["--run-id", "r1", "--jobs", "2",
                                 "--retries", "0",
                                 "--inject-faults", "worker.mid:crash@gcc"])
        assert failed.returncode == 6, failed.stderr
        seal = journal_lines(cache, "r1")[-1]
        assert seal["kind"] == "run.seal"
        assert seal["status"] == "failed" and seal["exit_code"] == 6
        out = tmp_path / "resumed.txt"
        resumed = run_cli(cache, ["--resume", "r1", "--out", str(out)])
        assert resumed.returncode == 0, resumed.stderr
        assert out.read_bytes() == clean_report

    def test_watchdog_worker_kill_then_resume(self, tmp_path, clean_report):
        # The deterministic hard-worker-kill: gcc's worker hangs, qcd
        # completes (its task.done lands in the parent's journal), then
        # the watchdog SIGKILLs the hung worker and retries are
        # exhausted.  Resume skips qcd and re-runs only gcc.
        cache = tmp_path / "cache"
        failed = run_cli(
            cache,
            ["--run-id", "r1", "--jobs", "2", "--retries", "0",
             "--worker-timeout", "2",
             "--inject-faults", "worker.mid:hang@gcc"],
            env={"REPRO_FAULT_HANG_S": "6"},
        )
        assert failed.returncode == 4, failed.stderr
        assert "WorkerTimeoutError" in failed.stderr
        records = journal_lines(cache, "r1")
        kinds = [(r["kind"], r.get("program")) for r in records]
        assert ("task.done", "qcd") in kinds
        assert ("task.failed", "gcc") in kinds
        assert records[-1]["status"] == "failed"
        gauges = assert_resume_converges(tmp_path, cache, "r1", clean_report)
        assert gauges["resume.tasks_skipped"] == 1


class TestGracefulShutdown:
    def test_sigint_serial(self, tmp_path, clean_report):
        cache = tmp_path / "cache"
        manifest = tmp_path / "m.json"
        proc = run_cli(cache, ["--run-id", "r1", "--retries", "0",
                               "--manifest", str(manifest),
                               "--inject-faults",
                               "store.publish:sigint@qcd"])
        assert proc.returncode == 128 + signal.SIGINT
        assert "exiting 130" in proc.stderr
        seal = journal_lines(cache, "r1")[-1]
        assert seal["kind"] == "run.seal"
        assert seal["status"] == "interrupted" and seal["exit_code"] == 130
        # The black box landed next to the manifest on the way out.
        blackbox = tmp_path / "m.blackbox.jsonl"
        assert blackbox.exists()
        categories = {json.loads(line)["category"]
                      for line in blackbox.read_text().splitlines()}
        assert "run.interrupted" in categories
        assert "journal.seal" in categories
        assert_resume_converges(tmp_path, cache, "r1", clean_report)

    def test_sigterm_parallel(self, tmp_path, clean_report):
        # Journal appends happen parent-side only, so this SIGTERMs the
        # parent while its --jobs 2 pool is live: the scheduler's
        # finally must reap the pool before the seal lands.  Append #5
        # is the second completion record (after begin + two intents +
        # the first done), so exactly one task.done survives for resume
        # to skip.
        cache = tmp_path / "cache"
        proc = run_cli(cache, ["--run-id", "r1", "--jobs", "2",
                               "--retries", "0",
                               "--inject-faults",
                               "journal.append:sigterm@5"])
        assert proc.returncode == 128 + signal.SIGTERM
        seal = journal_lines(cache, "r1")[-1]
        assert seal["status"] == "interrupted" and seal["exit_code"] == 143
        assert_resume_converges(tmp_path, cache, "r1", clean_report)


class TestResumeCli:
    def test_resume_unknown_run_is_a_usage_error(self, tmp_path):
        from repro.experiments.cli import main

        code = main(["table4", "--scale", "smoke", "--programs", "gcc",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--resume", "never-ran", "--quiet"])
        assert code == 2

    def test_resume_and_run_id_conflict(self, tmp_path):
        from repro.experiments.cli import main

        code = main(["table4", "--scale", "smoke", "--programs", "gcc",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--resume", "a", "--run-id", "b", "--quiet"])
        assert code == 2

    def test_runs_dir_override(self, tmp_path, capsys):
        from repro.experiments.cli import main

        runs = tmp_path / "elsewhere"
        code = main(["table4", "--scale", "smoke", "--programs", "gcc",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--run-id", "r1", "--runs-dir", str(runs), "--quiet"])
        capsys.readouterr()
        assert code == 0
        assert (runs / "r1.journal.jsonl").exists()
        assert not (tmp_path / "cache" / "runs").exists()
