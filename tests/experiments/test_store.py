"""Result store: envelope integrity, legacy shim, verify/gc surface.

Every simulation payload now travels inside a v3 envelope carrying a
SHA-256 of its pickled bytes; these tests pin the publish/load contract
(atomic, self-verifying, backward compatible with the committed bare-
pickle cache) and the maintenance surface behind ``store verify`` /
``store gc``.
"""

from __future__ import annotations

import pickle
import zipfile

import numpy as np
import pytest

from repro.errors import StoreCorruptError
from repro.experiments.store import (
    STATUS_CORRUPT,
    STATUS_LEGACY,
    STATUS_NPZ,
    STATUS_OTHER,
    STATUS_TMP,
    STATUS_V3,
    ResultStore,
    payload_digest,
)


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path)


def publish(store, name="entry.pkl", payload=None):
    payload = payload if payload is not None else {"stats": {"a": 1}}
    digest = store.publish_payload(store.root / name, payload, program="gcc")
    return store.root / name, payload, digest


class TestPublishLoad:
    def test_roundtrip_and_digest(self, store):
        path, payload, digest = publish(store)
        assert store.load_payload(path, program="gcc") == payload
        assert digest == payload_digest(pickle.dumps(payload))

    def test_envelope_on_disk_names_its_entry(self, store):
        path, _, digest = publish(store)
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
        assert envelope["format"] == "repro-store"
        assert envelope["version"] == 3
        assert envelope["algo"] == "sha256"
        assert envelope["entry"] == path.name
        assert envelope["digest"] == digest

    def test_tampered_payload_detected(self, store):
        path, _, _ = publish(store)
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
        envelope["payload"] = pickle.dumps({"stats": {"a": 2}})
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(StoreCorruptError, match="digest mismatch"):
            store.load_payload(path)

    def test_misplaced_blob_detected(self, store):
        # An entry copied under another entry's name must not pass for it.
        path, _, _ = publish(store, name="a.pkl")
        moved = store.root / "b.pkl"
        moved.write_bytes(path.read_bytes())
        with pytest.raises(StoreCorruptError, match="different entry"):
            store.load_payload(moved)

    def test_legacy_bare_payload_loads(self, store):
        # The committed full-scale cache predates the envelope; it must
        # keep loading through the shim.
        path = store.root / "legacy.pkl"
        payload = {"stats": {"b": 2}}
        path.write_bytes(pickle.dumps(payload))
        assert store.load_payload(path) == payload

    def test_publish_leaves_no_temp_droppings(self, store):
        publish(store)
        assert not list(store.root.glob("*.tmp"))


class TestVerify:
    def test_statuses(self, store, tmp_path):
        publish(store, name="good.pkl")
        (tmp_path / "legacy.pkl").write_bytes(pickle.dumps({"stats": {}}))
        (tmp_path / "torn.pkl").write_bytes(b"\x80\x04 torn mid-write")
        (tmp_path / "drop.pkl.abc123.tmp").write_bytes(b"half")
        (tmp_path / "README").write_text("not a store entry")
        np.savez(tmp_path / "trace.npz", col=np.arange(4))
        report = store.verify()
        by_name = {entry.name: entry.status for entry in report.entries}
        assert by_name["good.pkl"] == STATUS_V3
        assert by_name["legacy.pkl"] == STATUS_LEGACY
        assert by_name["torn.pkl"] == STATUS_CORRUPT
        assert by_name["drop.pkl.abc123.tmp"] == STATUS_TMP
        assert by_name["README"] == STATUS_OTHER
        assert by_name["trace.npz"] == STATUS_NPZ
        assert report.count(STATUS_CORRUPT) == 1
        assert [entry.name for entry in report.corrupt] == ["torn.pkl"]

    def test_truncated_npz_is_corrupt(self, store, tmp_path):
        np.savez(tmp_path / "trace.npz", col=np.arange(1000))
        blob = (tmp_path / "trace.npz").read_bytes()
        (tmp_path / "trace.npz").write_bytes(blob[: len(blob) // 2])
        (report_entry,) = store.verify().entries
        assert report_entry.status == STATUS_CORRUPT

    def test_flipped_bit_inside_npz_is_corrupt(self, store, tmp_path):
        np.savez(tmp_path / "trace.npz", col=np.zeros(4096, dtype=np.int64))
        blob = bytearray((tmp_path / "trace.npz").read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # flip inside the member data
        (tmp_path / "trace.npz").write_bytes(bytes(blob))
        (report_entry,) = store.verify().entries
        assert report_entry.status == STATUS_CORRUPT
        # ... and the container agrees it is damaged.
        with pytest.raises(Exception):
            with zipfile.ZipFile(tmp_path / "trace.npz") as archive:
                if archive.testzip() is not None:
                    raise ValueError("CRC failure")
                np.load(tmp_path / "trace.npz")["col"]

    def test_runs_subdir_left_alone(self, store, tmp_path):
        runs = tmp_path / "runs"
        runs.mkdir()
        (runs / "r1.journal.jsonl").write_text("{}\n")
        assert store.verify().entries == []

    def test_entry_ok(self, store, tmp_path):
        path, _, _ = publish(store, name="good.pkl")
        (tmp_path / "legacy.pkl").write_bytes(pickle.dumps({"stats": {}}))
        (tmp_path / "torn.pkl").write_bytes(b"torn")
        assert store.entry_ok("good.pkl")
        assert store.entry_ok("legacy.pkl")
        assert not store.entry_ok("torn.pkl")
        assert not store.entry_ok("absent.pkl")


class TestGc:
    def fill(self, store, tmp_path):
        publish(store, name="good.pkl")
        (tmp_path / "torn.pkl").write_bytes(b"torn")
        (tmp_path / "drop.pkl.abc123.tmp").write_bytes(b"half")

    def test_dry_run_removes_nothing(self, store, tmp_path):
        self.fill(store, tmp_path)
        result = store.gc(dry_run=True)
        assert sorted(result["removed"]) == ["drop.pkl.abc123.tmp", "torn.pkl"]
        assert (tmp_path / "torn.pkl").exists()

    def test_gc_removes_tmp_and_corrupt_only(self, store, tmp_path):
        self.fill(store, tmp_path)
        result = store.gc()
        assert sorted(result["removed"]) == ["drop.pkl.abc123.tmp", "torn.pkl"]
        assert result["kept"] == ["good.pkl"]
        assert (tmp_path / "good.pkl").exists()
        assert not (tmp_path / "torn.pkl").exists()
        assert not (tmp_path / "drop.pkl.abc123.tmp").exists()
