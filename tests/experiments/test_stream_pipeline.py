"""Stream-mode pipeline tests: ``--stream`` must be a pure execution-
strategy switch.

Same results as batch runs (bit-identical counting variables), fully
interchangeable cache entries (batch v1 entries replay through the
stream reader, streamed v2 entries load into batch runs), the same
corrupt-entry recovery, and the documented exit codes under fault
injection.
"""

from __future__ import annotations

import json

import pytest

from repro import faults, observe
from repro.experiments.cli import EXIT_PARTIAL, EXIT_USAGE, main as cli_main
from repro.experiments.pipeline import ExperimentConfig, load_program_data
from repro.errors import PipelineError

PROGRAM = "qcd"  # the cheapest workload at smoke scale


@pytest.fixture(autouse=True)
def clean_process_state():
    faults.clear_plan()
    observe.reset()
    yield
    faults.clear_plan()
    observe.reset()
    observe.disable()


def make_config(cache_dir, **overrides):
    return ExperimentConfig(
        programs=(PROGRAM,), scale="smoke", cache_dir=cache_dir, **overrides
    )


def assert_same_data(a, b):
    """Two ProgramData for the same program must agree on everything the
    tables are built from."""
    assert a.name == b.name and a.scale == b.scale
    assert vars(a.meta) == vars(b.meta)
    assert [vars(obj) for obj in a.registry.objects] == \
        [vars(obj) for obj in b.registry.objects]
    ra, rb = a.result, b.result
    assert ra.total_writes == rb.total_writes
    assert ra.overlap_anomalies == rb.overlap_anomalies
    assert ra.n_discarded == rb.n_discarded
    assert [s.index for s in ra.sessions] == [s.index for s in rb.sessions]
    for ca, cb in zip(ra.counts, rb.counts):
        assert (ca.installs, ca.removes, ca.hits, ca.misses,
                ca.max_concurrent) == \
            (cb.installs, cb.removes, cb.hits, cb.misses, cb.max_concurrent)
        assert set(ca.vm) == set(cb.vm)
        for size in ca.vm:
            va, vb = ca.vm[size], cb.vm[size]
            assert (va.protects, va.unprotects, va.active_page_misses) == \
                (vb.protects, vb.unprotects, vb.active_page_misses)


def _sim_entries(cache_dir):
    return list(cache_dir.glob("*-sim-*.pkl"))


def _trace_entries(cache_dir):
    return list(cache_dir.glob(f"{PROGRAM}-*.npz"))


class TestStreamEqualsBatch:
    def test_results_and_cache_interop_both_directions(self, tmp_path):
        batch_dir = tmp_path / "batch-first"
        stream_dir = tmp_path / "stream-first"

        # Batch first: the cache holds a v1 (whole-trace) entry.
        batch = load_program_data(PROGRAM, make_config(batch_dir))
        # A stream run over the same cache must replay that v1 entry.
        for sim in _sim_entries(batch_dir):
            sim.unlink()
        messages = []
        streamed = load_program_data(
            PROGRAM, make_config(batch_dir, stream=True, chunk_events=2048),
            messages.append,
        )
        assert_same_data(batch, streamed)
        assert any("opening cached trace" in message for message in messages)

        # Stream first: the cache holds a v2 (chunked) entry.
        streamed2 = load_program_data(
            PROGRAM, make_config(stream_dir, stream=True, chunk_events=2048)
        )
        assert_same_data(batch, streamed2)
        assert len(_trace_entries(stream_dir)) == 1
        for sim in _sim_entries(stream_dir):
            sim.unlink()
        # A batch run must load the chunked entry transparently.
        messages = []
        batch2 = load_program_data(
            PROGRAM, make_config(stream_dir), messages.append
        )
        assert_same_data(batch, batch2)
        assert any("loading cached trace" in message for message in messages)

    def test_engines_agree_in_stream_mode(self, tmp_path):
        py = load_program_data(
            PROGRAM,
            make_config(tmp_path, stream=True, engine="python",
                        chunk_events=1024),
        )
        for sim in _sim_entries(tmp_path):
            sim.unlink()
        np_ = load_program_data(
            PROGRAM,
            make_config(tmp_path, stream=True, engine="numpy",
                        chunk_events=4096),
        )
        assert_same_data(py, np_)

    def test_no_cache_spills_to_temp_and_cleans_up(self, tmp_path):
        batch = load_program_data(PROGRAM, make_config(tmp_path / "ref"))
        streamed = load_program_data(
            PROGRAM,
            make_config(tmp_path / "off", stream=True, use_cache=False,
                        chunk_events=2048),
        )
        assert_same_data(batch, streamed)
        # Nothing was written to the cache directory.
        assert not (tmp_path / "off").exists() or \
            list((tmp_path / "off").iterdir()) == []


class TestStreamRecovery:
    def test_corrupt_chunked_entry_recovers_as_miss(self, tmp_path):
        config = make_config(tmp_path, stream=True, chunk_events=2048)
        first = load_program_data(PROGRAM, config)
        (trace_entry,) = _trace_entries(tmp_path)
        # Tear the archive (a killed writer could never publish this,
        # but disks rot): the next run must recover, not crash.
        trace_entry.write_bytes(trace_entry.read_bytes()[:100])
        for sim in _sim_entries(tmp_path):
            sim.unlink()
        messages = []
        second = load_program_data(PROGRAM, config, messages.append)
        assert_same_data(first, second)
        assert any("corrupt" in message for message in messages)
        # The rebuilt entry is valid again.
        assert len(_trace_entries(tmp_path)) == 1

    def test_config_validates_chunk_events(self, tmp_path):
        with pytest.raises(PipelineError, match="chunk_events"):
            make_config(tmp_path, stream=True, chunk_events=0)
        with pytest.raises(PipelineError, match="chunk_events"):
            make_config(tmp_path, stream=True, chunk_events=True)


class TestStreamCli:
    def test_stream_run_writes_manifest_with_stream_fields(self, tmp_path):
        manifest_path = tmp_path / "run.json"
        code = cli_main([
            "table1", "--programs", PROGRAM, "--scale", "smoke",
            "--cache-dir", str(tmp_path / "cache"),
            "--stream", "--chunk-events", "2048",
            "--manifest", str(manifest_path), "--quiet",
        ])
        assert code == 0
        manifest = json.loads(manifest_path.read_text())
        assert manifest["config"]["stream"] is True
        assert manifest["config"]["chunk_events"] == 2048
        counters = manifest["counters"]
        assert counters["stream.chunks"] >= 1
        assert counters["stream.events"] > 0
        # The bounded-memory gauge: never more than the channel capacity
        # plus the chunks being produced/consumed at the edges.
        assert 1 <= manifest["gauges"]["stream.peak_resident_chunks"] <= 6

    def test_invalid_chunk_events_is_usage_error(self, tmp_path, capsys):
        code = cli_main([
            "table1", "--programs", PROGRAM, "--scale", "smoke",
            "--cache-dir", str(tmp_path), "--stream",
            "--chunk-events", "0", "--quiet",
        ])
        assert code == EXIT_USAGE
        assert "chunk_events" in capsys.readouterr().err

    def test_injected_transient_fault_is_retried(self, tmp_path, capsys):
        """A single injected corruption at the chunk-feed faultpoint
        (``@1``: first hit only) must be absorbed by the retry machinery
        — the spilled trace survives, so the retry replays it cleanly."""
        code = cli_main([
            "table1", "--programs", PROGRAM, "--scale", "smoke",
            "--cache-dir", str(tmp_path), "--stream",
            "--chunk-events", "2048",
            "--inject-faults", "stream.feed:corrupt@1", "--quiet",
        ])
        assert code == 0

    def test_injected_fatal_fault_keep_going_is_partial(self, tmp_path, capsys):
        code = cli_main([
            "table1", "--programs", PROGRAM, "--scale", "smoke",
            "--cache-dir", str(tmp_path), "--stream",
            "--chunk-events", "2048",
            "--inject-faults", "stream.emit:fatal", "--keep-going", "--quiet",
        ])
        assert code == EXIT_PARTIAL
        assert "PARTIAL RESULTS" in capsys.readouterr().out
