"""Cache-layer correctness: corruption recovery, atomic writes, validation.

A torn or garbage ``.repro_cache/`` entry must never abort a run — it is
logged, deleted, and recomputed as a miss — and writers must publish
entries atomically so a crash or a racing worker cannot tear a file.
"""

from __future__ import annotations

import pickle

import pytest

from repro import observe
from repro.errors import PipelineError
from repro.experiments.pipeline import ExperimentConfig, load_program_data
from repro.simulate import simulate_sessions, validate_page_sizes
from repro.trace import load_trace, save_trace

PROGRAM = "qcd"  # heapless and quick at smoke scale


@pytest.fixture()
def warm_cache(tmp_path):
    """A cache directory holding one program's trace + sim entries."""
    config = ExperimentConfig(
        programs=(PROGRAM,), scale="smoke", cache_dir=tmp_path
    )
    baseline = load_program_data(PROGRAM, config)
    return config, baseline


def _entry(config, suffix):
    matches = [p for p in config.cache_dir.iterdir() if p.name.endswith(suffix)]
    assert len(matches) == 1, matches
    return matches[0]


@pytest.fixture()
def observing():
    was_enabled = observe.is_enabled()
    observe.reset()
    observe.enable()
    yield observe.get_registry()
    if not was_enabled:
        observe.disable()
    observe.reset()


class TestCorruptionRecovery:
    def test_garbage_sim_pickle_recovers_as_miss(self, warm_cache, observing):
        config, baseline = warm_cache
        sim_path = _entry(config, ".pkl")
        sim_path.write_bytes(b"this is not a pickle")
        messages = []
        data = load_program_data(PROGRAM, config, messages.append)
        assert data.result.counts == baseline.result.counts
        counters = observing.snapshot()["counters"]
        assert counters["cache.sim.corrupt"] == 1
        assert counters["cache.sim.misses"] == 1
        assert "cache.sim.hits" not in counters
        notes = observing.snapshot()["notes"]
        assert notes["cache.sim.corrupt"] == [sim_path.name]
        assert any("corrupt" in message for message in messages)
        # The bad entry was replaced by a good one: next load is a hit.
        reloaded = load_program_data(PROGRAM, config)
        assert reloaded.result.counts == baseline.result.counts
        assert observing.snapshot()["counters"]["cache.sim.hits"] == 1

    def test_truncated_sim_pickle_recovers(self, warm_cache):
        config, baseline = warm_cache
        sim_path = _entry(config, ".pkl")
        sim_path.write_bytes(sim_path.read_bytes()[:64])  # torn mid-write
        data = load_program_data(PROGRAM, config)
        assert data.result.counts == baseline.result.counts

    def test_wrong_shape_sim_payload_recovers(self, warm_cache):
        config, baseline = warm_cache
        sim_path = _entry(config, ".pkl")
        with open(sim_path, "wb") as handle:
            pickle.dump({"unexpected": 1}, handle)
        data = load_program_data(PROGRAM, config)
        assert data.result.counts == baseline.result.counts

    def test_truncated_trace_npz_recovers(self, warm_cache, observing):
        config, baseline = warm_cache
        _entry(config, ".pkl").unlink()  # force the trace path to be read
        trace_path = _entry(config, ".npz")
        trace_path.write_bytes(trace_path.read_bytes()[:100])
        messages = []
        data = load_program_data(PROGRAM, config, messages.append)
        assert data.result.counts == baseline.result.counts
        counters = observing.snapshot()["counters"]
        assert counters["cache.trace.corrupt"] == 1
        assert counters["cache.trace.misses"] == 1
        assert any("corrupt" in message for message in messages)

    def test_garbage_trace_npz_recovers(self, warm_cache):
        config, baseline = warm_cache
        _entry(config, ".pkl").unlink()
        _entry(config, ".npz").write_bytes(b"\x00" * 32)
        data = load_program_data(PROGRAM, config)
        assert data.result.counts == baseline.result.counts

    def test_corrupt_kind_byte_recovers(self, warm_cache, observing):
        """A flipped kind byte in a well-formed .npz must not reach the
        engine: ``EventTrace.validate()`` rejects it at load time and the
        pipeline recomputes the trace as a miss."""
        import numpy as np

        config, baseline = warm_cache
        _entry(config, ".pkl").unlink()  # force the trace path to be read
        trace_path = _entry(config, ".npz")
        with np.load(trace_path) as archive:
            columns = {name: archive[name] for name in archive.files}
        columns["kinds"] = columns["kinds"].copy()
        columns["kinds"][len(columns["kinds"]) // 2] = 77  # not an EventKind
        with open(trace_path, "wb") as handle:
            np.savez_compressed(handle, **columns)
        data = load_program_data(PROGRAM, config)
        assert data.result.counts == baseline.result.counts
        counters = observing.snapshot()["counters"]
        assert counters["cache.trace.corrupt"] == 1
        assert counters["cache.trace.misses"] == 1


class TestReadonlyCache:
    """An unwritable cache dir degrades the run, never aborts it."""

    # A cache dir nested under a regular file: mkdir and every write
    # raise OSError (chmod-based setups don't bind when running as root).

    def test_run_succeeds_cacheless(self, tmp_path, observing):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        config = ExperimentConfig(
            programs=(PROGRAM,), scale="smoke", cache_dir=blocker / "cache"
        )
        messages = []
        data = load_program_data(PROGRAM, config, messages.append)
        assert data.result.counts
        snapshot = observing.snapshot()
        assert snapshot["counters"]["cache.readonly"] >= 1
        assert any("unwritable" in message for message in messages)
        # Nothing claims to have been written.
        assert "cache.trace.written" not in snapshot["notes"]
        assert "cache.sim.written" not in snapshot["notes"]

    def test_cacheless_run_matches_cached_run(self, tmp_path, warm_cache):
        _, baseline = warm_cache
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        config = ExperimentConfig(
            programs=(PROGRAM,), scale="smoke", cache_dir=blocker / "cache"
        )
        data = load_program_data(PROGRAM, config)
        assert data.result.counts == baseline.result.counts


class TestEndToEndRecovery:
    """Corruption recovery exercised through the real CLI entry point."""

    def test_truncated_trace_npz_recovers_through_cli(self, tmp_path):
        from repro.experiments.cli import main as cli_main

        cache_dir = tmp_path / "cache"
        args = ["table4", "--scale", "smoke", "--programs", PROGRAM,
                "--cache-dir", str(cache_dir), "--quiet"]
        clean = tmp_path / "clean.txt"
        assert cli_main(args + ["--out", str(clean)]) == 0

        sim = [p for p in cache_dir.iterdir() if p.name.endswith(".pkl")]
        for path in sim:
            path.unlink()  # force the trace entry to be read
        (trace_path,) = [p for p in cache_dir.iterdir()
                         if p.name.endswith(".npz")]
        trace_path.write_bytes(trace_path.read_bytes()[:100])

        recovered = tmp_path / "recovered.txt"
        assert cli_main(args + ["--out", str(recovered)]) == 0
        assert recovered.read_text() == clean.read_text()


class TestAtomicWrites:
    def test_no_temp_files_left_behind(self, warm_cache):
        config, _ = warm_cache
        leftovers = [p for p in config.cache_dir.iterdir()
                     if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_save_trace_replaces_whole_file(self, warm_cache, tmp_path):
        config, _ = warm_cache
        trace_path = _entry(config, ".npz")
        trace, registry = load_trace(trace_path)
        target = tmp_path / "out" / "entry.npz"
        target.parent.mkdir()
        target.write_bytes(b"old torn garbage")
        save_trace(trace, registry, target)
        # The publish was a rename: the content is complete and loadable.
        reloaded_trace, _ = load_trace(target)
        assert len(reloaded_trace) == len(trace)
        assert [p.name for p in target.parent.iterdir()] == ["entry.npz"]


class TestPageSizeValidation:
    @pytest.mark.parametrize("bad", [0, -4096, 3000, 4097, 2.5, True])
    def test_validate_rejects(self, bad):
        with pytest.raises(PipelineError):
            validate_page_sizes((4096, bad))

    def test_validate_rejects_empty(self):
        with pytest.raises(PipelineError):
            validate_page_sizes(())

    @pytest.mark.parametrize("good", [(1,), (4096,), (4096, 8192), (2, 65536)])
    def test_validate_accepts_powers_of_two(self, good):
        validate_page_sizes(good)

    def test_config_rejects_bad_page_size(self):
        with pytest.raises(PipelineError):
            ExperimentConfig(page_sizes=(4096, 3000))

    def test_engine_rejects_bad_page_size(self, warm_cache):
        config, _ = warm_cache
        trace, registry = load_trace(_entry(config, ".npz"))
        from repro.sessions import discover_sessions

        sessions = discover_sessions(registry)
        with pytest.raises(PipelineError):
            simulate_sessions(trace, registry, sessions, page_sizes=(3000,))
