"""Parallel pipeline: equivalence with serial, merged observation, CLI.

The process-pool fan-out must be invisible to consumers: identical
``ProgramData`` for every program, identical rendered tables, and — when
observation is on — a merged manifest whose counter totals match a
serial run's, with the worker fan-out visible only as extra
``worker:<name>`` spans.
"""

from __future__ import annotations

import pytest

from repro import observe
from repro.errors import PipelineError
from repro.experiments.cli import main as cli_main
from repro.experiments.parallel import load_experiment_data_parallel
from repro.experiments.pipeline import ExperimentConfig, load_experiment_data
from repro.observe.manifest import RunManifest, load_manifest
from repro.observe.traceview import spans_to_trace_events

PROGRAMS = ("gcc", "ctex", "spice", "qcd", "bps")


@pytest.fixture(scope="module")
def serial_data(tmp_path_factory):
    config = ExperimentConfig(
        programs=PROGRAMS, scale="smoke",
        cache_dir=tmp_path_factory.mktemp("serial_cache"),
    )
    return load_experiment_data(config)


@pytest.fixture(scope="module")
def parallel_data(tmp_path_factory):
    config = ExperimentConfig(
        programs=PROGRAMS, scale="smoke",
        cache_dir=tmp_path_factory.mktemp("parallel_cache"), jobs=2,
    )
    return load_experiment_data(config)


class TestEquivalence:
    def test_all_programs_present_in_config_order(self, parallel_data):
        assert tuple(parallel_data) == PROGRAMS

    def test_counting_variables_identical(self, serial_data, parallel_data):
        for name in PROGRAMS:
            serial = serial_data[name]
            parallel = parallel_data[name]
            assert serial.scale == parallel.scale
            assert serial.meta.base_time_us == parallel.meta.base_time_us
            serial_sessions = [s.label for s in serial.result.sessions]
            parallel_sessions = [s.label for s in parallel.result.sessions]
            assert serial_sessions == parallel_sessions, name
            assert serial.result.counts == parallel.result.counts, name
            assert serial.result.total_writes == parallel.result.total_writes
            assert serial.result.n_discarded == parallel.result.n_discarded

    def test_single_job_config_takes_serial_path(self, serial_data, tmp_path):
        # jobs=1 must not spin up a pool; results still correct.
        config = ExperimentConfig(
            programs=("qcd",), scale="smoke", cache_dir=tmp_path, jobs=1,
        )
        data = load_experiment_data(config)
        assert data["qcd"].result.counts == serial_data["qcd"].result.counts

    def test_jobs_clamped_to_program_count(self, serial_data, tmp_path):
        config = ExperimentConfig(
            programs=("qcd", "gcc"), scale="smoke", cache_dir=tmp_path,
        )
        data = load_experiment_data_parallel(config, jobs=64)
        assert tuple(data) == ("qcd", "gcc")
        assert data["gcc"].result.counts == serial_data["gcc"].result.counts


class TestMergedObservation:
    @pytest.fixture()
    def observing(self):
        was_enabled = observe.is_enabled()
        observe.reset()
        observe.enable()
        yield observe.get_registry()
        if not was_enabled:
            observe.disable()
        observe.reset()

    def test_merged_manifest_counters_match_serial_totals(
        self, observing, tmp_path
    ):
        config = ExperimentConfig(
            programs=PROGRAMS, scale="smoke", cache_dir=tmp_path / "cold",
            jobs=3,
        )
        with observe.span("pipeline"):
            load_experiment_data(config)
        manifest = RunManifest.from_registry(target="parallel-unit")
        # Cold cache: every program missed and recomputed, in a worker.
        assert manifest.counters["cache.trace.misses"] == len(PROGRAMS)
        assert manifest.counters["cache.sim.misses"] == len(PROGRAMS)
        assert manifest.counters["engine.runs"] == len(PROGRAMS)
        assert manifest.cache["trace"]["written"]
        assert manifest.counters["trace.events"] == manifest.counters["engine.events"]
        assert manifest.counters["cpu.stores"] == manifest.counters["trace.writes"]
        assert manifest.gauges["pipeline.jobs"] == 3
        # Stage rollup looks serial: every program reports its stages.
        for name in PROGRAMS:
            assert {"compile", "trace", "simulate"} <= set(manifest.stages[name])

    def test_worker_spans_grafted_under_parent(self, observing, tmp_path):
        config = ExperimentConfig(
            programs=("qcd", "gcc"), scale="smoke", cache_dir=tmp_path,
            jobs=2,
        )
        with observe.span("pipeline"):
            load_experiment_data(config)
        spans = observing.snapshot()["spans"]
        by_name = {s["name"]: s for s in spans}
        for name in ("qcd", "gcc"):
            worker = by_name[f"worker:{name}"]
            assert worker["path"] == f"pipeline/worker:{name}"
            assert worker["parent"] == "pipeline"
            program = by_name[f"program:{name}"]
            assert program["path"] == f"pipeline/worker:{name}/program:{name}"
            # Worker clocks are rebased into the parent timeline: the
            # grafted span cannot start before its worker was submitted.
            assert program["start_s"] >= worker["start_s"]

    def test_trace_export_gives_each_worker_a_lane(self, observing, tmp_path):
        config = ExperimentConfig(
            programs=("qcd", "gcc"), scale="smoke", cache_dir=tmp_path,
            jobs=2,
        )
        with observe.span("pipeline"):
            load_experiment_data(config)
        document = spans_to_trace_events(observing.snapshot()["spans"])
        events = document["traceEvents"]
        lane_names = {
            e["args"]["name"] for e in events if e.get("name") == "thread_name"
        }
        assert {"worker:qcd", "worker:gcc"} <= lane_names
        tids = {
            e["tid"] for e in events
            if e["ph"] == "X" and "worker:" in e["args"].get("path", "")
        }
        assert len(tids) == 2  # one lane per worker
        main_tids = {
            e["tid"] for e in events
            if e["ph"] == "X" and "worker:" not in e["args"].get("path", "")
        }
        assert main_tids.isdisjoint(tids)


class TestSharedTracePlane:
    """Workers attach to parent-published trace segments (zero-copy)."""

    @pytest.fixture()
    def observing(self):
        was_enabled = observe.is_enabled()
        observe.reset()
        observe.enable()
        yield observe.get_registry()
        if not was_enabled:
            observe.disable()
        observe.reset()

    @staticmethod
    def _warm_trace_cold_sim(config):
        """Fill the trace cache, then drop the sim cache entries."""
        from repro.experiments.pipeline import sim_cache_path
        from repro.workloads import WORKLOADS

        warm = ExperimentConfig(
            programs=config.programs, scale=config.scale,
            cache_dir=config.cache_dir, jobs=1,
        )
        data = load_experiment_data(warm)
        for name in config.programs:
            workload = WORKLOADS[name]
            sim_cache_path(workload, warm.scale_of(workload), warm).unlink()
        return data

    def test_workers_attach_instead_of_unpickling(self, observing, tmp_path):
        import glob

        programs = ("qcd", "gcc")
        config = ExperimentConfig(
            programs=programs, scale="smoke", cache_dir=tmp_path, jobs=2,
        )
        serial = self._warm_trace_cold_sim(config)
        observe.reset()  # drop warm-up counters
        observe.enable()
        parallel = load_experiment_data(config)
        counters = observing.snapshot()["counters"]
        # Every program's trace came over shared memory, not the disk
        # cache: zero trace unpickles in the workers.
        assert counters["trace.shm.published"] == len(programs)
        assert counters["trace.shm.attached"] == len(programs)
        assert counters["trace.shm.released"] == len(programs)
        assert counters.get("cache.trace.hits", 0) == 0
        assert counters.get("trace.shm.attach_failed", 0) == 0
        # Shared plane is invisible to results: bit-identical to serial.
        for name in programs:
            assert serial[name].result.counts == parallel[name].result.counts
            assert (serial[name].result.total_writes
                    == parallel[name].result.total_writes)
        # And the parent reclaimed every segment.
        assert not glob.glob("/dev/shm/repro-trace-*")

    def test_cold_trace_cache_skips_publication(self, observing, tmp_path):
        # Nothing on disk to publish from: workers trace for themselves
        # and the run still completes (sharing is an optimization).
        config = ExperimentConfig(
            programs=("qcd",), scale="smoke", cache_dir=tmp_path, jobs=2,
        )
        data = load_experiment_data_parallel(config, jobs=2)
        counters = observing.snapshot()["counters"]
        assert counters.get("trace.shm.published", 0) == 0
        assert counters.get("trace.shm.attached", 0) == 0
        assert "qcd" in data

    def test_warm_sim_cache_skips_publication(self, observing, tmp_path):
        # Sim cache hit means the worker never needs the trace; the
        # parent must not waste memory publishing one.
        programs = ("qcd", "gcc")
        warm = ExperimentConfig(
            programs=programs, scale="smoke", cache_dir=tmp_path, jobs=1,
        )
        load_experiment_data(warm)
        observe.reset()
        observe.enable()
        config = ExperimentConfig(
            programs=programs, scale="smoke", cache_dir=tmp_path, jobs=2,
        )
        load_experiment_data(config)
        counters = observing.snapshot()["counters"]
        assert counters.get("trace.shm.published", 0) == 0
        assert counters["cache.sim.hits"] == len(programs)


class TestCli:
    def test_jobs_flag_smoke(self, capsys, tmp_path):
        code = cli_main([
            "table4", "--scale", "smoke", "--cache-dir", str(tmp_path),
            "--quiet", "--programs", "qcd", "gcc", "--jobs", "2",
        ])
        assert code == 0
        assert "Table 4" in capsys.readouterr().out

    def test_jobs_recorded_in_manifest(self, capsys, tmp_path):
        manifest_path = tmp_path / "run.json"
        code = cli_main([
            "table1", "--scale", "smoke", "--cache-dir", str(tmp_path / "c"),
            "--quiet", "--programs", "qcd", "gcc", "--jobs", "2",
            "--manifest", str(manifest_path),
        ])
        assert code == 0
        manifest = load_manifest(manifest_path)
        assert manifest.config["jobs"] == 2
        assert {"worker:qcd", "worker:gcc"} <= {
            s["name"] for s in manifest.spans
        }

    def test_bad_jobs_rejected(self, capsys):
        assert cli_main(["table1", "--quiet", "--jobs", "0"]) == 2
        assert "jobs" in capsys.readouterr().err


class TestConfigValidation:
    def test_jobs_must_be_positive_int(self):
        with pytest.raises(PipelineError):
            ExperimentConfig(jobs=0)
        with pytest.raises(PipelineError):
            ExperimentConfig(jobs=-2)
