"""CLI surface of the flight recorder: --events, the events subcommand,
the black-box dump, and the graceful trend/diff degenerate cases."""

from __future__ import annotations

import json

import pytest

from repro import faults, observe
from repro.experiments.cli import (
    EXIT_OK,
    EXIT_PIPELINE,
    main as cli_main,
)
from repro.observe.history import HistoryRecord


@pytest.fixture(autouse=True)
def restore_observe_state():
    """CLI runs flip process-global observation; put it all back."""
    was_observing = observe.is_enabled()
    yield
    faults.clear_plan()
    observe.reset()
    observe.disable_events()
    if was_observing:
        observe.enable()
    else:
        observe.disable()


def _run_cli(tmp_path, *extra):
    argv = [
        "table4", "--scale", "smoke", "--programs", "gcc",
        "--cache-dir", str(tmp_path / "cache"), "--quiet",
    ]
    argv.extend(extra)
    return cli_main(argv)


class TestEventsFlag:
    def test_events_log_validates_and_correlates(self, tmp_path, capsys):
        log = tmp_path / "run.events.jsonl"
        manifest_path = tmp_path / "run.json"
        code = _run_cli(tmp_path, "--events", str(log),
                        "--manifest", str(manifest_path))
        assert code == EXIT_OK
        capsys.readouterr()

        events = observe.load_event_log(log, allow_multiple_runs=False)
        categories = [e["category"] for e in events]
        assert categories[0] == "run.start"
        assert categories[-1] == "run.done"
        assert "program.start" in categories
        assert "program.done" in categories
        assert {"cache.hit", "cache.miss"} & set(categories)

        manifest = observe.load_manifest(manifest_path)
        assert manifest.events is not None
        assert manifest.events["run_id"] == events[0]["run_id"]
        assert manifest.events["log"] == str(log)
        # run.done lands after the manifest snapshot, hence the >=.
        assert manifest.events["emitted"] >= len(events) - 1

    def test_observing_without_events_flag_still_arms_recorder(
            self, tmp_path, capsys):
        manifest_path = tmp_path / "run.json"
        code = _run_cli(tmp_path, "--manifest", str(manifest_path))
        assert code == EXIT_OK
        capsys.readouterr()
        manifest = observe.load_manifest(manifest_path)
        assert manifest.events is not None
        assert manifest.events["log"] is None

    def test_plain_run_keeps_events_off(self, tmp_path, capsys):
        observe.disable_events()
        assert _run_cli(tmp_path) == EXIT_OK
        capsys.readouterr()
        assert not observe.events_enabled()


class TestBlackBox:
    def test_written_next_to_manifest_on_failure_exit(self, tmp_path, capsys):
        manifest_path = tmp_path / "run.json"
        code = _run_cli(
            tmp_path, "--manifest", str(manifest_path),
            "--retries", "0",
            "--inject-faults", "cache.write:fatal@gcc",
        )
        assert code == EXIT_PIPELINE
        err = capsys.readouterr().err
        blackbox = tmp_path / "run.blackbox.jsonl"
        assert blackbox.exists()
        assert "black box" in err
        events = observe.load_event_log(blackbox, allow_multiple_runs=False)
        categories = [e["category"] for e in events]
        assert "fault.triggered" in categories
        assert "program.failed" in categories
        assert categories[-1] == "run.done"
        (done,) = [e for e in events if e["category"] == "run.done"]
        assert done["data"]["code"] == EXIT_PIPELINE

    def test_named_after_events_log_without_manifest(self, tmp_path, capsys):
        log = tmp_path / "chaos.jsonl"
        code = _run_cli(
            tmp_path, "--events", str(log), "--retries", "0",
            "--inject-faults", "cache.write:fatal@gcc",
        )
        assert code == EXIT_PIPELINE
        capsys.readouterr()
        assert (tmp_path / "chaos.blackbox.jsonl").exists()

    def test_not_written_on_success(self, tmp_path, capsys):
        log = tmp_path / "ok.jsonl"
        assert _run_cli(tmp_path, "--events", str(log)) == EXIT_OK
        capsys.readouterr()
        assert not (tmp_path / "ok.blackbox.jsonl").exists()


class TestEventsSubcommand:
    @pytest.fixture()
    def event_log(self, tmp_path, capsys):
        log = tmp_path / "run.events.jsonl"
        assert _run_cli(tmp_path, "--events", str(log)) == EXIT_OK
        capsys.readouterr()
        return log

    def test_plain_listing(self, event_log, capsys):
        assert cli_main(["events", str(event_log)]) == 0
        out = capsys.readouterr().out
        assert "run.start" in out and "run.done" in out
        assert "event(s)" in out

    def test_severity_filter(self, event_log, capsys):
        assert cli_main(["events", str(event_log),
                         "--severity", "WARNING"]) == 0
        out = capsys.readouterr().out
        assert "run.start" not in out  # INFO filtered away

    def test_category_prefix_and_tail(self, event_log, capsys):
        assert cli_main(["events", str(event_log), "--category", "cache",
                         "--tail", "1"]) == 0
        out = capsys.readouterr().out
        body = [line for line in out.splitlines()[1:] if line.strip()]
        assert len(body) == 1
        assert "cache." in body[0]

    def test_worker_filter_selects_parent(self, event_log, capsys):
        assert cli_main(["events", str(event_log), "--worker", ""]) == 0
        out = capsys.readouterr().out
        assert "run.start" in out

    def test_json_output_roundtrips(self, event_log, capsys):
        assert cli_main(["events", str(event_log), "--json"]) == 0
        out = capsys.readouterr().out
        parsed = [json.loads(line) for line in out.splitlines() if line]
        assert parsed and all("category" in e for e in parsed)

    def test_time_range_filter(self, event_log, capsys):
        assert cli_main(["events", str(event_log),
                         "--since", "0", "--until", "1e9"]) == 0
        assert "run.start" in capsys.readouterr().out

    def test_missing_log_is_usage_error(self, tmp_path, capsys):
        assert cli_main(["events", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_log_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"not": "an event"}\n{"v": 1}\n', encoding="utf-8")
        assert cli_main(["events", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_empty_log_is_friendly(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert cli_main(["events", str(empty)]) == 0
        assert "empty" in capsys.readouterr().out


def _history_record(digest, seconds):
    return HistoryRecord(
        timestamp="2026-08-08T00:00:00+00:00", target="table4",
        manifest_digest=digest, env_digest="e",
        headline={"total_stage_seconds": seconds},
    )


def _write_history(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")


class TestGracefulTrendAndDiff:
    def test_trend_empty_history(self, tmp_path, capsys):
        missing = tmp_path / "none.json"
        assert cli_main(["trend", "--history", str(missing)]) == 0
        assert "history is empty" in capsys.readouterr().out

    def test_trend_single_record_notes_it(self, tmp_path, capsys):
        path = tmp_path / "one.json"
        _write_history(path, [_history_record("abc", 1.5)])
        assert cli_main(["trend", "--history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "only one run recorded" in out

    def test_diff_history_empty_and_single_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "hist.json"
        path.write_text("", encoding="utf-8")
        assert cli_main(["diff", "--history", str(path)]) == 0
        assert "nothing to compare" in capsys.readouterr().out
        _write_history(path, [_history_record("abc", 1.5)])
        assert cli_main(["diff", "--history", str(path)]) == 0
        assert "only one record" in capsys.readouterr().out

    def test_diff_history_compares_last_two(self, tmp_path, capsys):
        path = tmp_path / "hist.json"
        _write_history(path, [
            _history_record("aaa", 1.0),
            _history_record("bbb", 1.5),
            _history_record("ccc", 3.0),
        ])
        assert cli_main(["diff", "--history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "bbb -> ccc" in out
        assert "+100.0%" in out

    def test_diff_hints_when_given_a_history_file(self, tmp_path, capsys):
        path = tmp_path / "hist.json"
        _write_history(path, [_history_record("abc", 1.5)])
        assert cli_main(["diff", str(path), str(path)]) == 2
        err = capsys.readouterr().err
        assert "hint" in err and "--history" in err

    def test_diff_needs_two_manifests_or_history(self, capsys):
        assert cli_main(["diff"]) == 2
        assert "two manifest files" in capsys.readouterr().err

    def test_diff_rejects_mixing_history_and_manifests(self, tmp_path, capsys):
        assert cli_main(["diff", "a.json", "b.json",
                         "--history", "h.json"]) == 2
        assert "one or the other" in capsys.readouterr().err
