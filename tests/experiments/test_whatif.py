"""Tests for the what-if sensitivity analysis (smoke scale)."""

import pytest

from repro.experiments import ExperimentConfig, load_experiment_data
from repro.experiments.whatif import (
    nh_win_fraction,
    render_whatif_report,
    trap_breakeven_factor,
    trap_cost_sweep,
    vm_fault_sweep,
)
from repro.models.timing import SPARCSTATION_2_TIMING


@pytest.fixture(scope="module")
def data(tmp_path_factory):
    config = ExperimentConfig(
        programs=("gcc", "bps"),
        scale="smoke",
        cache_dir=tmp_path_factory.mktemp("whatif-cache"),
    )
    return load_experiment_data(config)


class TestTrapSweep:
    def test_factor_one_is_real_platform(self, data):
        sweep = trap_cost_sweep(data, factors=(1.0,))
        for ratio in sweep[1.0].values():
            # TP per write = (102 + 2.75) / 2.75 ~ 38x CP, minus the
            # shared install/remove term.
            assert 15 < ratio < 45

    def test_monotone_in_factor(self, data):
        sweep = trap_cost_sweep(data, factors=(1.0, 0.5, 0.1))
        for program in data:
            assert sweep[1.0][program] > sweep[0.5][program] > sweep[0.1][program]

    def test_never_below_one(self, data):
        sweep = trap_cost_sweep(data, factors=(0.001,))
        for ratio in sweep[0.001].values():
            assert ratio >= 1.0


class TestBreakeven:
    def test_closed_form(self):
        factor = trap_breakeven_factor(SPARCSTATION_2_TIMING)
        assert factor == pytest.approx(2.75 / 102.0)


class TestVmSweep:
    def test_scaling_reduces_ratio(self, data):
        sweep = vm_fault_sweep(data, factors=(1.0, 0.25))
        for program in data:
            assert sweep[0.25][program] < sweep[1.0][program]


class TestNhWins:
    def test_fractions_in_range(self, data):
        wins = nh_win_fraction(data)
        for fraction in wins.values():
            assert 0.0 <= fraction <= 1.0

    def test_heap_programs_mostly_nh_wins(self, data):
        # bps sessions are heap objects with tiny hit counts: NH nearly free.
        assert nh_win_fraction(data)["bps"] > 0.8


class TestReport:
    def test_renders(self, data):
        text = render_whatif_report(data)
        assert "TP/CP t-mean ratio" in text
        assert "NativeHardware vs CodePatch" in text
