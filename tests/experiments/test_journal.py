"""Run journal: record integrity, replay semantics, resume planning.

The journal is the write-ahead half of crash-safe runs: ``task.intent``
is durable before work starts, ``task.done`` lands only after the
store's atomic publish, and replay must survive exactly the artifacts a
SIGKILL leaves behind (a torn final line, a missing completion).  The
end-to-end kill-and-resume certification lives in ``test_resume.py``;
these tests pin the record format and the skip/re-execute logic.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import JournalError, PipelineError
from repro.experiments.journal import (
    RunJournal,
    config_digest,
    journal_path,
    plan_resume,
    replay_journal,
    task_digest,
    task_entries,
)
from repro.experiments.pipeline import ExperimentConfig
from repro.experiments.store import ResultStore


def make_config(tmp_path, programs=("gcc", "qcd"), **kwargs):
    return ExperimentConfig(
        programs=tuple(programs), scale="smoke", cache_dir=tmp_path / "cache",
        **kwargs,
    )


@pytest.fixture()
def config(tmp_path):
    return make_config(tmp_path)


def write_journal(config, run_id="r1", fsync="never"):
    return RunJournal(journal_path(run_id, config), run_id, fsync=fsync)


class TestRecords:
    def test_roundtrip_replay(self, config):
        with write_journal(config) as journal:
            journal.begin(config)
            journal.intent_for("gcc", config, attempt=1)
            journal.done_for("gcc", config)
            journal.intent_for("qcd", config, attempt=1)
            journal.failed_for("qcd", config, "PipelineError", attempts=2)
            journal.seal("failed", exit_code=4)
        replay = replay_journal(journal.path)
        assert replay.run_id == "r1"
        assert replay.config == config_digest(config)
        assert replay.programs == ["gcc", "qcd"]
        assert replay.status == "failed" and replay.exit_code == 4
        assert replay.sealed and not replay.torn
        assert replay.records == 6
        assert replay.state_of(task_digest("gcc", config)) == "done"
        assert replay.state_of(task_digest("qcd", config)) == "failed"
        assert replay.state_of("0" * 16) == "unknown"

    def test_every_record_is_checksummed(self, config):
        with write_journal(config) as journal:
            journal.begin(config)
            journal.done_for("gcc", config)
        for line in journal.path.read_text().splitlines():
            record = json.loads(line)
            assert record["v"] == 1
            assert len(record.pop("sum")) == 8

    def test_done_after_failed_wins(self, config):
        with write_journal(config) as journal:
            journal.begin(config)
            journal.failed_for("gcc", config, "InjectedOSError")
            journal.done_for("gcc", config)
        replay = replay_journal(journal.path)
        digest = task_digest("gcc", config)
        assert replay.state_of(digest) == "done"
        assert digest not in replay.failed

    def test_intent_without_done_is_in_flight(self, config):
        with write_journal(config) as journal:
            journal.begin(config)
            journal.intent_for("gcc", config)
        replay = replay_journal(journal.path)
        assert replay.state_of(task_digest("gcc", config)) == "in-flight"

    def test_seal_is_idempotent_and_validated(self, config):
        with write_journal(config) as journal:
            journal.begin(config)
            with pytest.raises(JournalError, match="seal status"):
                journal.seal("finished")
            journal.seal("complete", exit_code=0)
            journal.seal("failed", exit_code=4)  # ignored: first seal wins
        replay = replay_journal(journal.path)
        assert replay.status == "complete" and replay.exit_code == 0

    def test_bad_fsync_policy_rejected(self, config):
        with pytest.raises(JournalError, match="fsync policy"):
            write_journal(config, fsync="sometimes")

    def test_unwritable_journal_raises_journal_error(self, tmp_path):
        config = make_config(tmp_path)
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the runs dir should be")
        with pytest.raises(JournalError, match="cannot open"):
            RunJournal(blocker / "r1.journal.jsonl", "r1", fsync="never")


class TestReplayTolerance:
    def test_torn_final_line_is_tolerated(self, config):
        with write_journal(config) as journal:
            journal.begin(config)
            journal.done_for("gcc", config)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"v":1,"kind":"task.int')  # killed mid-append
        replay = replay_journal(journal.path)
        assert replay.torn
        assert replay.records == 2
        assert replay.state_of(task_digest("gcc", config)) == "done"

    def test_corrupt_middle_record_stops_replay(self, config):
        with write_journal(config) as journal:
            journal.begin(config)
            journal.done_for("gcc", config)
            journal.done_for("qcd", config)
        lines = journal.path.read_text().splitlines()
        lines[1] = lines[1].replace('"kind":"task.done"',
                                    '"kind":"task.dome"')
        journal.path.write_text("\n".join(lines) + "\n")
        replay = replay_journal(journal.path)
        # The tampered record fails its checksum; everything after it is
        # conservatively dropped (re-execution is always safe).
        assert replay.torn and replay.records == 1
        assert replay.state_of(task_digest("qcd", config)) == "unknown"

    def test_missing_journal_raises(self, config):
        with pytest.raises(JournalError, match="cannot read"):
            replay_journal(journal_path("nope", config))

    def test_empty_journal_raises(self, config):
        path = journal_path("empty", config)
        path.parent.mkdir(parents=True)
        path.write_text("")
        with pytest.raises(JournalError, match="no valid records"):
            replay_journal(path)


class TestTaskDigest:
    def test_stable_across_calls(self, config):
        assert task_digest("gcc", config) == task_digest("gcc", config)

    def test_distinguishes_programs_and_config(self, tmp_path, config):
        assert task_digest("gcc", config) != task_digest("qcd", config)
        for other in (
            make_config(tmp_path, engine="python"),
            make_config(tmp_path, stream=True),
            ExperimentConfig(programs=("gcc",), scale=40,
                             cache_dir=tmp_path / "cache",
                             page_sizes=(4096,)),
        ):
            assert task_digest("gcc", config) != task_digest("gcc", other)

    def test_unknown_program_rejected(self, config):
        with pytest.raises(PipelineError, match="unknown program"):
            task_digest("notaprog", config)

    def test_entries_empty_without_cache(self, tmp_path):
        config = make_config(tmp_path, use_cache=False)
        assert task_entries("gcc", config) == []


class TestResumePlanning:
    def publish_entries(self, program, config):
        store = ResultStore(config.cache_dir)
        for name in task_entries(program, config):
            store.publish_payload(config.cache_dir / name,
                                  {"stats": {}}, program=program)
        return store

    def test_done_and_verified_skips(self, config):
        store = self.publish_entries("gcc", config)
        with write_journal(config) as journal:
            journal.begin(config)
            journal.done_for("gcc", config)
        plan = plan_resume(replay_journal(journal.path), config, store)
        assert plan.skipped == ["gcc"]
        assert plan.replayed == ["qcd"]
        assert not plan.config_changed

    def test_done_without_entry_on_disk_replays(self, config):
        # The journal claims, the store proves: a done record whose
        # entry vanished (or never made it) must re-execute.
        store = ResultStore(config.cache_dir)
        with write_journal(config) as journal:
            journal.begin(config)
            journal.done_for("gcc", config)
        plan = plan_resume(replay_journal(journal.path), config, store)
        assert plan.skipped == []
        assert sorted(plan.replayed) == ["gcc", "qcd"]

    def test_corrupt_entry_replays(self, config):
        store = self.publish_entries("gcc", config)
        with write_journal(config) as journal:
            journal.begin(config)
            journal.done_for("gcc", config)
        (entry,) = task_entries("gcc", config)
        (config.cache_dir / entry).write_bytes(b"shredded")
        plan = plan_resume(replay_journal(journal.path), config, store)
        assert plan.skipped == []

    def test_no_cache_run_never_skips(self, tmp_path):
        config = make_config(tmp_path, use_cache=False)
        store = ResultStore(config.cache_dir)
        with write_journal(config) as journal:
            journal.begin(config)
            journal.done_for("gcc", config)
        plan = plan_resume(replay_journal(journal.path), config, store)
        assert plan.skipped == []

    def test_config_drift_flagged_and_digests_replay(self, tmp_path, config):
        self.publish_entries("gcc", config)
        with write_journal(config) as journal:
            journal.begin(config)
            journal.done_for("gcc", config)
        changed = make_config(tmp_path, engine="python")
        plan = plan_resume(replay_journal(journal.path), changed,
                           ResultStore(changed.cache_dir))
        assert plan.config_changed
        # The engine is part of the task digest, so nothing matches.
        assert plan.skipped == []
