"""CLI wiring smoke checks: the module entry point must keep working."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.cli import main as cli_main

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _module_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestCliSmoke:
    def test_module_help_exits_zero(self):
        """``python -m repro.experiments --help`` must exit 0."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "--help"],
            env=_module_env(),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "repro-experiments" in proc.stdout
        assert "--manifest" in proc.stdout and "--metrics" in proc.stdout

    def test_missing_target_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            cli_main([])
        assert excinfo.value.code == 2

    def test_unknown_target_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["table99"])
        assert excinfo.value.code == 2
