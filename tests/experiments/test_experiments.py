"""Tests for the experiment pipeline and the per-table modules.

Everything runs at smoke scale against a per-session cache directory so
the suite stays fast and hermetic.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    compute_breakdown,
    compute_code_expansion,
    compute_figures,
    compute_hotspots,
    compute_table1,
    compute_table2,
    compute_table3,
    compute_table4,
    load_experiment_data,
    render_breakdown_report,
    render_code_expansion_report,
    render_figures_report,
    render_hotspots_report,
    render_table1_report,
    render_table2_report,
    render_table3_report,
    render_table4_report,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.pipeline import load_program_data
from repro.models.paper_data import CODE_EXPANSION_RANGE, TABLE_2


@pytest.fixture(scope="module")
def config(tmp_path_factory):
    return ExperimentConfig(
        programs=("gcc", "ctex", "spice", "qcd", "bps"),
        scale="smoke",
        cache_dir=tmp_path_factory.mktemp("cache"),
    )


@pytest.fixture(scope="module")
def data(config):
    return load_experiment_data(config)


class TestPipeline:
    def test_all_programs_loaded(self, data):
        assert set(data) == {"gcc", "ctex", "spice", "qcd", "bps"}

    def test_program_data_fields(self, data):
        program = data["gcc"]
        assert program.base_time_us > 0
        assert len(program.result.sessions) == len(program.result.counts) > 0

    def test_cache_roundtrip(self, config, data):
        messages = []
        reloaded = load_program_data("gcc", config, messages.append)
        assert any("cached" in message for message in messages)
        assert len(reloaded.result.sessions) == len(data["gcc"].result.sessions)

    def test_unknown_program_rejected(self, config):
        from repro.errors import PipelineError

        with pytest.raises(PipelineError):
            load_program_data("nethack", config)

    def test_scale_resolution(self):
        from repro.workloads import get_workload

        workload = get_workload("gcc")
        assert ExperimentConfig(scale="full").scale_of(workload) == workload.default_scale
        assert ExperimentConfig(scale="smoke").scale_of(workload) == workload.smoke_scale
        assert ExperimentConfig(scale=7).scale_of(workload) == 7


class TestTable1:
    def test_counts_sum_to_studied_sessions(self, data):
        rows = compute_table1(data)
        for name, row in rows.items():
            total = sum(
                row[kind]
                for kind in (
                    "OneLocalAuto", "AllLocalInFunc", "OneGlobalStatic",
                    "OneHeap", "AllHeapInFunc",
                )
            )
            assert total == len(data[name].result.sessions)

    def test_heapless_programs(self, data):
        rows = compute_table1(data)
        for name in ("ctex", "qcd"):
            assert rows[name]["OneHeap"] == 0
            assert rows[name]["AllHeapInFunc"] == 0

    def test_report_renders(self, data):
        text = render_table1_report(data)
        assert "Table 1" in text and "paper" in text.lower()


class TestTable2:
    def test_measured_close_to_paper(self):
        measured = compute_table2()
        for name, paper_value in TABLE_2.items():
            assert measured[name] == pytest.approx(paper_value, rel=0.10), name

    def test_report_renders(self):
        text = render_table2_report()
        assert "NHFaultHandler" in text and "561" in text


class TestTable3:
    def test_columns_present(self, data):
        rows = compute_table3(data)
        for row in rows.values():
            assert row["hits"] > 0
            assert row["misses"] > row["hits"]
            assert row["vm4k_active_page_misses"] <= row["misses"]

    def test_report_renders(self, data):
        assert "Table 3" in render_table3_report(data)


class TestTable4:
    def test_all_columns(self, data):
        table = compute_table4(data)
        for per_approach in table.values():
            assert list(per_approach) == ["NH", "VM-4K", "VM-8K", "TP", "CP"]

    def test_strategy_ordering_holds(self, data):
        """The paper's headline ordering at the t-mean."""
        table = compute_table4(data)
        for row in table.values():
            assert row["NH"].t_mean <= row["CP"].t_mean < row["TP"].t_mean

    def test_report_includes_shape_checks(self, data):
        text = render_table4_report(data)
        assert "Shape checks" in text
        assert "[PASS]" in text


class TestFigures:
    def test_three_figures(self, data):
        figures = compute_figures(data)
        assert set(figures) == {"figure7", "figure8", "figure9"}

    def test_figure7_is_max_of_table4(self, data):
        figures = compute_figures(data)
        table = compute_table4(data)
        for program, per_approach in figures["figure7"].values.items():
            for approach, value in per_approach.items():
                assert value == table[program][approach].max

    def test_report_renders(self, data):
        text = render_figures_report(data)
        assert "Figure 7" in text and "Figure 9" in text


class TestBreakdown:
    def test_dominant_components_match_paper(self, data):
        """NH 100% fault handler; TP ~97%; CP ~98-99% lookup; VM mostly
        fault handler (section 8)."""
        breakdown = compute_breakdown(data)
        for program, per_approach in breakdown.items():
            assert per_approach["NH"]["NHFaultHandler"] == pytest.approx(100.0)
            # At smoke scale install/remove traffic is proportionally
            # heavier than at full scale, so thresholds here are looser
            # than the paper's (97% / 98-99%); the dominant component
            # must still be the one the paper names.
            assert per_approach["TP"]["TPFaultHandler"] > 80.0
            assert max(per_approach["TP"], key=per_approach["TP"].get) == "TPFaultHandler"
            assert per_approach["CP"]["SoftwareLookup"] > 55.0
            assert max(per_approach["CP"], key=per_approach["CP"].get) == "SoftwareLookup"
            assert max(
                per_approach["VM-4K"], key=per_approach["VM-4K"].get
            ) == "VMFaultHandler"

    def test_shares_sum_to_100(self, data):
        breakdown = compute_breakdown(data)
        for per_approach in breakdown.values():
            for shares in per_approach.values():
                assert sum(shares.values()) == pytest.approx(100.0)

    def test_report_renders(self, data):
        assert "Dominant component" in render_breakdown_report(data)


class TestCodeExpansion:
    def test_expansion_in_paper_regime(self):
        low, high = CODE_EXPANSION_RANGE
        rows = compute_code_expansion()
        for row in rows.values():
            # Our MiniC codegen is a bit more store-dense than GCC 1.4's
            # SPARC output; allow the surrounding regime.
            assert 0.08 <= row.estimated_expansion <= 0.30, row

    def test_static_estimate_equals_actual_patch_diff(self):
        rows = compute_code_expansion()
        for row in rows.values():
            assert row.estimated_expansion == pytest.approx(row.actual_expansion)

    def test_report_renders(self):
        assert "12%-15%" in render_code_expansion_report()


class TestHotspots:
    def test_top_sessions_ranked(self, data):
        hotspots = compute_hotspots(data, top_n=3)
        for per_approach in hotspots.values():
            for sessions in per_approach.values():
                overheads = [hot.relative_overhead for hot in sessions]
                assert overheads == sorted(overheads, reverse=True)

    def test_report_renders(self, data):
        assert "hot spots" in render_hotspots_report(data).lower()


class TestCli:
    def test_cli_table4_smoke(self, capsys, config):
        code = cli_main([
            "table4", "--scale", "smoke", "--cache-dir", str(config.cache_dir),
            "--quiet", "--programs", "gcc",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 4" in out

    def test_cli_expansion_needs_no_pipeline(self, capsys):
        assert cli_main(["expansion", "--quiet"]) == 0
        assert "expansion" in capsys.readouterr().out.lower()


class TestCliOut:
    def test_out_writes_report_file(self, capsys, config, tmp_path):
        out_file = tmp_path / "report.txt"
        code = cli_main([
            "table1", "--scale", "smoke", "--cache-dir", str(config.cache_dir),
            "--quiet", "--programs", "gcc", "--out", str(out_file),
        ])
        assert code == 0
        assert out_file.exists()
        assert "Table 1" in out_file.read_text()

    def test_no_cache_flag_bypasses_cache(self, tmp_path, capsys):
        code = cli_main([
            "expansion", "--quiet", "--no-cache", "--cache-dir", str(tmp_path),
        ])
        assert code == 0
        assert not list(tmp_path.iterdir())
