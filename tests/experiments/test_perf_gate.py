"""Integration: the perf gate is one command end to end.

Covers the acceptance path: run ``table4 --scale smoke --manifest`` twice,
``repro-experiments diff a.json b.json`` exits 0; degrade a stage timing
past threshold and the diff exits non-zero with a readable report.  Also
exercises ``--history``/``trend``, ``--trace-out`` (round-trip parsed),
and ``--profile`` through the real CLI entry point.
"""

from __future__ import annotations

import json

import pytest

from repro import observe
from repro.experiments.cli import main as cli_main
from repro.observe import profile as observe_profile

pytestmark = pytest.mark.observe

PROGRAM = "qcd"  # heapless and quick at smoke scale


@pytest.fixture(autouse=True)
def clean_observe_state():
    """The CLI flips process-global observation state; restore it."""
    was_enabled = observe.is_enabled()
    yield
    if not was_enabled:
        observe.disable()
    observe_profile.disable_profiling()
    observe.reset()


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("perf_gate_cache")


def run_cli(*extra, cache_dir):
    return cli_main([
        "table4", "--scale", "smoke", "--programs", PROGRAM,
        "--cache-dir", str(cache_dir), "--quiet", *extra,
    ])


class TestDiffGate:
    def test_identical_runs_pass_and_degraded_stage_fails(
        self, cache_dir, tmp_path, capsys
    ):
        a_path = tmp_path / "a.json"
        b_path = tmp_path / "b.json"
        assert run_cli("--manifest", str(a_path), cache_dir=cache_dir) == 0
        assert run_cli("--manifest", str(b_path), cache_dir=cache_dir) == 0

        # Two runs of the same target: no metric regressed, gate passes.
        assert cli_main(["diff", str(a_path), str(b_path)]) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out

        # Degrade one stage timing past the 25% relative + 5ms absolute
        # thresholds: the gate must fail with a readable report.
        degraded = json.loads(b_path.read_text(encoding="utf-8"))
        program, stages = next(iter(degraded["stages"].items()))
        stage = next(iter(stages))
        stages[stage] = stages[stage] * 10.0 + 1.0
        c_path = tmp_path / "c.json"
        c_path.write_text(json.dumps(degraded), encoding="utf-8")

        assert cli_main(["diff", str(b_path), str(c_path)]) == 1
        out = capsys.readouterr().out
        assert "verdict: REGRESSION" in out
        assert f"stages/{program}/{stage}" in out
        assert "slowed" in out

        # --report-only downgrades the same regression to exit 0.
        assert cli_main([
            "diff", str(b_path), str(c_path), "--report-only",
        ]) == 0

    def test_json_verdict_output(self, cache_dir, tmp_path, capsys):
        a_path = tmp_path / "a.json"
        assert run_cli("--manifest", str(a_path), cache_dir=cache_dir) == 0
        capsys.readouterr()
        assert cli_main(["diff", str(a_path), str(a_path), "--json"]) == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["verdict"] == "ok"
        assert verdict["n_regressions"] == 0

    def test_unreadable_manifest_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{not json", encoding="utf-8")
        assert cli_main(["diff", str(bogus), str(bogus)]) == 2
        assert "error:" in capsys.readouterr().err


class TestHistoryAndTrend:
    def test_history_appends_and_trend_renders(self, cache_dir, tmp_path, capsys):
        history = tmp_path / "BENCH_history.json"
        assert run_cli("--history", str(history), cache_dir=cache_dir) == 0
        assert run_cli("--history", str(history), cache_dir=cache_dir) == 0
        assert len(history.read_text().splitlines()) == 2
        capsys.readouterr()
        assert cli_main(["trend", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "Benchmark trend" in out
        assert "2 run(s)" in out


class TestTraceExport:
    def test_trace_out_emits_valid_chrome_trace_json(
        self, cache_dir, tmp_path, capsys
    ):
        trace_path = tmp_path / "run.trace.json"
        assert run_cli("--trace-out", str(trace_path), cache_dir=cache_dir) == 0
        parsed = json.loads(trace_path.read_text(encoding="utf-8"))
        assert parsed["displayTimeUnit"] == "ms"
        complete = [e for e in parsed["traceEvents"] if e["ph"] == "X"]
        assert complete, "no span events exported"
        names = {event["name"] for event in complete}
        assert "pipeline" in names and "model" in names
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["args"]["path"], str)


class TestProfileFlag:
    def test_profile_prints_top_n_and_fills_manifest_counters(
        self, cache_dir, tmp_path, capsys
    ):
        manifest_path = tmp_path / "p.json"
        # --no-cache forces the CPU + engine to actually run so both
        # sampled families have data.
        assert cli_main([
            "table4", "--scale", "smoke", "--programs", PROGRAM,
            "--cache-dir", str(cache_dir), "--quiet", "--no-cache",
            "--profile", "--manifest", str(manifest_path),
        ]) == 0
        err = capsys.readouterr().err
        assert "Sampling profile" in err
        assert "CPU opcodes" in err
        assert "Engine events" in err
        manifest = observe.load_manifest(manifest_path)
        opcode_counters = [
            name for name in manifest.counters
            if name.startswith("profile.cpu.opcode.")
        ]
        event_counters = [
            name for name in manifest.counters
            if name.startswith("profile.engine.event.")
        ]
        assert opcode_counters and event_counters
        assert manifest.gauges["profile.cpu.stride"] == observe.DEFAULT_SAMPLE_STRIDE
