"""Tests for the source-level debugger."""

import pytest

from repro.debugger import Debugger
from repro.errors import DebuggerError, SymbolNotFound

SOURCE = """
int total;
int history[4];

void record(int v) {
  static int cursor;
  history[cursor % 4] = v;
  cursor = cursor + 1;
}

int accumulate(int n) {
  int i;
  int local_sum;
  local_sum = 0;
  for (i = 1; i <= n; i = i + 1) {
    local_sum = local_sum + i;
  }
  return local_sum;
}

int main() {
  int *node;
  total = accumulate(4);
  record(total);
  node = malloc(8);
  node[0] = total;
  node[1] = total * 2;
  record(node[1]);
  free(node);
  return total;
}
"""

STRATEGIES = ["native", "vm", "trap", "code"]


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestDataBreakpointsAcrossStrategies:
    def test_global_watch(self, strategy):
        debugger = Debugger.from_source(SOURCE, strategy=strategy)
        bp = debugger.watch_global("total")
        outcome = debugger.run()
        assert outcome.finished
        assert outcome.state.exit_value == 10
        assert bp.hit_count == 1
        assert bp.events[0].value == 10

    def test_stop_and_resume(self, strategy):
        debugger = Debugger.from_source(SOURCE, strategy=strategy)
        debugger.watch_global("total", action="stop")
        outcome = debugger.run()
        assert outcome.stopped
        assert "total" in outcome.stop.describe()
        outcome = debugger.cont()
        assert outcome.finished
        assert outcome.state.exit_value == 10


class TestLocalWatch:
    def test_local_across_loop_iterations(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        bp = debugger.watch_local("accumulate", "local_sum")
        outcome = debugger.run()
        assert outcome.finished
        # init + 4 additions
        assert bp.hit_count == 5
        assert [e.value for e in bp.events] == [0, 1, 3, 6, 10]

    def test_param_watch(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        bp = debugger.watch_local("record", "v")
        outcome = debugger.run()
        assert outcome.finished
        # prologue spill per call: two calls
        assert bp.hit_count == 2
        assert [e.value for e in bp.events] == [10, 20]

    def test_static_local_watch(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        bp = debugger.watch_local("record", "cursor")
        outcome = debugger.run()
        assert outcome.finished
        assert [e.value for e in bp.events] == [1, 2]

    def test_local_in_recursive_function(self):
        source = """
        int depth_product(int n) {
          int here;
          here = n;
          if (n <= 1) return 1;
          return here * depth_product(n - 1);
        }
        int main() { return depth_product(4); }
        """
        debugger = Debugger.from_source(source, strategy="code")
        bp = debugger.watch_local("depth_product", "here")
        outcome = debugger.run()
        assert outcome.finished
        assert outcome.state.exit_value == 24
        assert sorted(e.value for e in bp.events) == [1, 2, 3, 4]

    def test_unknown_local_raises(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        with pytest.raises(SymbolNotFound):
            debugger.watch_local("accumulate", "nope")


class TestHeapWatch:
    def test_heap_object_watch(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        bp = debugger.watch_heap("main", alloc_ordinal=0)
        outcome = debugger.run()
        assert outcome.finished
        assert [e.value for e in bp.events] == [10, 20]

    def test_heap_monitor_removed_on_free(self):
        source = """
        int main() {
          int *a; int *b;
          a = malloc(8);
          a[0] = 1;
          free(a);
          b = malloc(8);    /* reuses a's address */
          b[0] = 2;
          free(b);
          return 0;
        }
        """
        debugger = Debugger.from_source(source, strategy="code")
        bp = debugger.watch_heap("main", alloc_ordinal=0)
        outcome = debugger.run()
        assert outcome.finished
        # Only the first object's write is caught, even though the second
        # lands at the same address.
        assert [e.value for e in bp.events] == [1]

    def test_heap_watch_follows_realloc(self):
        """Object identity survives realloc (paper footnote 4)."""
        source = """
        int main() {
          int *p;
          p = malloc(8);
          p[0] = 5;
          p = realloc(p, 4000);
          p[500] = 6;
          free(p);
          return 0;
        }
        """
        debugger = Debugger.from_source(source, strategy="code")
        bp = debugger.watch_heap("main", alloc_ordinal=0)
        outcome = debugger.run()
        assert outcome.finished
        assert [e.value for e in bp.events] == [5, 6]

    def test_context_filter(self):
        source = """
        int *leak;
        void helper() { leak = malloc(4); leak[0] = 7; }
        int main() {
          int *mine;
          helper();
          mine = malloc(4);
          mine[0] = 8;
          free(mine);
          free(leak);
          return 0;
        }
        """
        debugger = Debugger.from_source(source, strategy="code")
        bp = debugger.watch_heap("helper")
        outcome = debugger.run()
        assert outcome.finished
        # Only the allocation made while helper() was on the stack.
        assert [e.value for e in bp.events] == [7]


class TestConditionsAndControl:
    def test_conditional_breakpoint(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        bp = debugger.watch_local(
            "accumulate", "local_sum", condition=lambda v: v > 4
        )
        debugger.run()
        assert [e.value for e in bp.events] == [6, 10]

    def test_conditional_stop(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        debugger.watch_local(
            "accumulate", "local_sum", condition=lambda v: v == 6, action="stop"
        )
        outcome = debugger.run()
        assert outcome.stopped
        assert outcome.stop.event.value == 6
        assert debugger.cont().finished

    def test_control_breakpoint(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        bp = debugger.break_at("record", action="log")
        outcome = debugger.run()
        assert outcome.finished
        assert bp.hit_count == 2

    def test_control_breakpoint_stop_and_inspect(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        debugger.break_at("accumulate")
        outcome = debugger.run()
        assert outcome.stopped
        assert debugger.call_stack() == ["main", "accumulate"]
        assert debugger.read_local("accumulate", "n") == 4
        assert debugger.cont().finished

    def test_disabled_breakpoint_silent(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        bp = debugger.watch_global("total")
        bp.enabled = False
        debugger.run()
        assert bp.hit_count == 0


class TestSessionLifecycle:
    def test_run_twice_rejected(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        debugger.run()
        with pytest.raises(DebuggerError):
            debugger.run()

    def test_cont_before_run_rejected(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        with pytest.raises(DebuggerError):
            debugger.cont()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(DebuggerError):
            Debugger.from_source(SOURCE, strategy="magic")

    def test_read_global(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        debugger.run()
        assert debugger.read_global("total") == 10

    def test_events_carry_locations(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        debugger.watch_global("total")
        debugger.run()
        event = debugger.events[0]
        assert "main" in event.location
        assert event.call_stack[-1] == "main"

    def test_multiple_breakpoints_independent(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        bp_total = debugger.watch_global("total")
        bp_hist = debugger.watch_global("history")
        outcome = debugger.run()
        assert outcome.finished
        assert bp_total.hit_count == 1
        assert bp_hist.hit_count == 2
