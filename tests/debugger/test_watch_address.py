"""Tests for raw-address data breakpoints."""

import pytest

from repro.debugger import Debugger
from repro.errors import DebuggerError

SOURCE = """
int a;
int b;
int main() {
  a = 1;
  b = 2;
  a = 3;
  return a + b;
}
"""


class TestWatchAddress:
    def test_watch_exact_word(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        begin, end = debugger.symbols.global_range("a")
        bp = debugger.watch_address(begin, end)
        outcome = debugger.run()
        assert outcome.finished
        assert [event.value for event in bp.events] == [1, 3]

    def test_watch_range_spanning_variables(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        a_begin, _ = debugger.symbols.global_range("a")
        _, b_end = debugger.symbols.global_range("b")
        bp = debugger.watch_address(min(a_begin, b_end - 4), max(a_begin + 4, b_end))
        debugger.run()
        assert bp.hit_count == 3

    def test_stop_action(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        begin, end = debugger.symbols.global_range("b")
        debugger.watch_address(begin, end, action="stop")
        outcome = debugger.run()
        assert outcome.stopped
        assert "0x" in outcome.stop.event.breakpoint.describe()
        assert debugger.cont().finished

    def test_empty_range_rejected(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        with pytest.raises(DebuggerError):
            debugger.watch_address(0x100, 0x100)

    @pytest.mark.parametrize("strategy", ["native", "vm", "trap"])
    def test_other_strategies(self, strategy):
        debugger = Debugger.from_source(SOURCE, strategy=strategy)
        begin, end = debugger.symbols.global_range("a")
        bp = debugger.watch_address(begin, end)
        outcome = debugger.run()
        assert outcome.finished
        assert bp.hit_count == 2
