"""Tests for only-changes watchpoints and ignore counts."""

import pytest

from repro.debugger import Debugger
from repro.debugger.shell import DebuggerShell

SOURCE = """
int value;
int main() {
  value = 5;
  value = 5;      /* rewrite, same value */
  value = 7;
  value = 7;      /* rewrite, same value */
  value = 5;
  return value;
}
"""


class TestOnlyChanges:
    def test_plain_watch_sees_every_write(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        bp = debugger.watch_global("value")
        debugger.run()
        assert [event.value for event in bp.events] == [5, 5, 7, 7, 5]

    def test_only_changes_filters_rewrites(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        bp = debugger.watch_global("value", only_changes=True)
        debugger.run()
        assert [event.value for event in bp.events] == [5, 7, 5]

    @pytest.mark.parametrize("strategy", ["native", "vm", "trap"])
    def test_other_strategies(self, strategy):
        debugger = Debugger.from_source(SOURCE, strategy=strategy)
        bp = debugger.watch_global("value", only_changes=True)
        debugger.run()
        assert [event.value for event in bp.events] == [5, 7, 5]

    def test_local_only_changes(self):
        source = """
        int f(int x) {
          int seen;
          seen = x;
          seen = x;
          seen = x + 1;
          return seen;
        }
        int main() { return f(9); }
        """
        debugger = Debugger.from_source(source, strategy="code")
        bp = debugger.watch_local("f", "seen", only_changes=True)
        debugger.run()
        assert [event.value for event in bp.events] == [9, 10]

    def test_combines_with_condition(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        bp = debugger.watch_global(
            "value", only_changes=True, condition=lambda v: v > 5
        )
        debugger.run()
        assert [event.value for event in bp.events] == [7]

    def test_shell_changed_flag(self):
        shell = DebuggerShell.from_source(SOURCE, strategy="code")
        shell.execute("watch value changed")
        shell.execute("run")
        assert "hits=3" in shell.execute("info breakpoints")


class TestIgnoreCount:
    def test_ignores_first_n_triggers(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        bp = debugger.watch_global("value")
        bp.ignore_count = 3
        debugger.run()
        assert [event.value for event in bp.events] == [7, 5]
        assert bp.ignore_count == 0

    def test_ignore_applies_after_condition(self):
        """gdb semantics: the ignore count only counts triggers that
        would otherwise fire (condition already satisfied)."""
        debugger = Debugger.from_source(SOURCE, strategy="code")
        bp = debugger.watch_global("value", condition=lambda v: v == 7)
        bp.ignore_count = 1
        debugger.run()
        assert [event.value for event in bp.events] == [7]

    def test_ignore_with_stop(self):
        debugger = Debugger.from_source(SOURCE, strategy="code")
        bp = debugger.watch_global("value", action="stop")
        bp.ignore_count = 4
        outcome = debugger.run()
        assert outcome.stopped
        assert outcome.stop.event.value == 5
        assert debugger.cont().finished

    def test_shell_ignore_command(self):
        shell = DebuggerShell.from_source(SOURCE, strategy="code")
        shell.execute("watch value")
        response = shell.execute("ignore 1 4")
        assert "next 4" in response
        shell.execute("run")
        assert "hits=1" in shell.execute("info breakpoints")

    def test_shell_ignore_bad_args(self):
        shell = DebuggerShell.from_source(SOURCE, strategy="code")
        shell.execute("watch value")
        assert "error" in shell.execute("ignore 1")
        assert "error" in shell.execute("ignore 1 lots")
