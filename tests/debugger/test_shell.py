"""Tests for the command shell over the debugger."""

import pytest

from repro.debugger.shell import DebuggerShell, _parse_condition, _parse_number, ShellError

SOURCE = """
int total;
int limit = 25;

void add(int v) {
  total = total + v;
}

int main() {
  int i;
  for (i = 1; i <= 6; i = i + 1) {
    add(i);
  }
  return total;
}
"""


@pytest.fixture
def shell():
    return DebuggerShell.from_source(SOURCE, strategy="code")


class TestParsing:
    def test_parse_number_forms(self):
        assert _parse_number("42") == 42
        assert _parse_number("0x10") == 16
        assert _parse_number("2.5") == 2.5

    def test_parse_number_rejects_garbage(self):
        with pytest.raises(ShellError):
            _parse_number("banana")

    def test_parse_condition_consumes_clause(self):
        tokens = ["total", "if", ">", "10"]
        cond = _parse_condition(tokens)
        assert tokens == ["total"]
        assert cond(11) and not cond(10)

    def test_parse_condition_absent(self):
        tokens = ["total"]
        assert _parse_condition(tokens) is None

    def test_parse_condition_bad_operator(self):
        with pytest.raises(ShellError):
            _parse_condition(["x", "if", "~", "3"])


class TestCommands:
    def test_empty_line(self, shell):
        assert shell.execute("") == ""

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.execute("teleport")

    def test_help(self, shell):
        text = shell.execute("help")
        assert "watch" in text and "backtrace" in text

    def test_watch_and_run(self, shell):
        responses = shell.run_script(["watch total", "run"])
        assert "data breakpoint #1" in responses[0]
        assert "program exited with 21" in responses[1]

    def test_watch_local(self, shell):
        shell.execute("watch add.v")
        out = shell.execute("run")
        assert "exited with 21" in out
        info = shell.execute("info breakpoints")
        assert "hits=6" in info

    def test_conditional_stop_and_continue(self, shell):
        shell.execute("watch total if >= 10 stop")
        out = shell.execute("run")
        assert "stopped" in out
        assert "value 10" in out
        # CodePatch checks run *before* the store (the CHK precedes the
        # ST), so at the stop memory still holds the old value; the event
        # carries the value being written.  The write lands on continue.
        assert shell.execute("print total") == "total = 6"
        out = shell.execute("continue")
        assert "stopped" in out and "value 15" in out
        assert shell.execute("print total") == "total = 10"
        out = shell.execute("continue")
        assert "stopped" in out and "value 21" in out
        out = shell.execute("continue")
        assert "exited with 21" in out
        assert "already exited" in shell.execute("continue")

    def test_conditional_stop_post_write_under_trap_patch(self):
        """TrapPatch emulates the store before notifying, so memory shows
        the new value at the stop — the write-monitor (post-write)
        semantics of the paper's section 1."""
        shell = DebuggerShell.from_source(SOURCE, strategy="trap")
        shell.execute("watch total if >= 10 stop")
        out = shell.execute("run")
        assert "stopped" in out and "value 10" in out
        assert shell.execute("print total") == "total = 10"

    def test_backtrace_at_stop(self, shell):
        shell.execute("break add")
        shell.execute("run")
        trace = shell.execute("backtrace")
        assert trace.splitlines()[0] == "#0  add"
        assert "main" in trace

    def test_print_global_and_initialized(self, shell):
        shell.execute("run")
        assert shell.execute("print limit") == "limit = 25"
        assert "error" in shell.execute("print nonsense")

    def test_disable_enable(self, shell):
        shell.execute("watch total")
        assert "disabled" in shell.execute("disable 1")
        shell.execute("run")
        assert "hits=0" in shell.execute("info breakpoints")
        assert "enabled" in shell.execute("enable 1")

    def test_disable_unknown_number(self, shell):
        assert "error" in shell.execute("disable 9")
        assert "error" in shell.execute("disable x")

    def test_info_events(self, shell):
        shell.execute("watch total")
        shell.execute("run")
        events = shell.execute("info events")
        assert "value 21" in events

    def test_stats(self, shell):
        shell.execute("watch total")
        shell.execute("run")
        stats = shell.execute("stats")
        assert "strategy=code" in stats and "hits=6" in stats

    def test_output_command(self):
        shell = DebuggerShell.from_source(
            "int main() { print_int(7); return 0; }"
        )
        shell.execute("run")
        assert shell.execute("output") == "7"

    def test_watch_heap_command(self):
        source = """
        int main() {
          int *p;
          p = malloc(8);
          p[0] = 5;
          free(p);
          return 0;
        }
        """
        shell = DebuggerShell.from_source(source)
        shell.execute("watch-heap main 0")
        shell.execute("run")
        assert "hits=1" in shell.execute("info breakpoints")

    def test_interact_quits(self, shell):
        lines = iter(["watch total", "quit"])
        outputs = []
        shell.interact(input_fn=lambda prompt: next(lines), output_fn=outputs.append)
        assert any("data breakpoint" in text for text in outputs)
