"""Fault plan grammar: parsing, matching, and deterministic evaluation."""

from __future__ import annotations

from math import inf

import pytest

from repro.errors import FaultSpecError
from repro.faults.plan import ACTIONS, FaultClause, FaultPlan, parse_plan


class TestParsing:
    def test_bare_clause(self):
        (clause,) = parse_plan("cache.read:corrupt")
        assert clause == FaultClause(site="cache.read", action="corrupt")

    def test_all_actions_parse(self):
        for action in ACTIONS:
            (clause,) = parse_plan(f"io.write:{action}")
            assert clause.action == action

    def test_nth_qualifier(self):
        (clause,) = parse_plan("cache.read:corrupt@2")
        assert clause.nth == 2
        assert clause.probability is None and clause.program is None

    def test_probability_qualifier_needs_a_dot(self):
        (clause,) = parse_plan("io.write:oserror@0.1")
        assert clause.probability == pytest.approx(0.1)

    def test_program_qualifier(self):
        (clause,) = parse_plan("worker:crash@gcc")
        assert clause.program == "gcc"

    def test_times_suffix(self):
        (clause,) = parse_plan("worker:fatal@gcc*3")
        assert clause.max_attempt == 3
        (clause,) = parse_plan("worker:fatal*inf")
        assert clause.max_attempt == inf

    def test_multiple_clauses(self):
        clauses = parse_plan("worker:crash@gcc, cache.read:corrupt@2")
        assert [c.site for c in clauses] == ["worker", "cache.read"]

    def test_describe_round_trips(self):
        spec = "worker:crash@gcc,cache.read:corrupt@2,io.write:oserror@0.5,worker:fatal*inf"
        clauses = parse_plan(spec)
        assert ",".join(c.describe() for c in clauses) == spec

    @pytest.mark.parametrize("bad", [
        "",
        "   ",
        "worker",                 # no action
        "worker:explode",         # unknown action
        "Worker:crash",           # uppercase site
        "worker.:crash",          # trailing dot
        "worker:crash@0",         # nth must be >= 1
        "worker:crash@1.5",       # probability out of (0, 1]
        "worker:crash@0.0",       # probability must be > 0
        "worker:crash@!bad",      # junk qualifier
        "worker:crash*0",         # times must be >= 1
        "worker:crash*soon",      # junk times
    ])
    def test_bad_specs_raise_fault_spec_error(self, bad):
        with pytest.raises(FaultSpecError):
            parse_plan(bad)


class TestSiteMatching:
    def test_exact_match_fires(self):
        plan = FaultPlan("worker.start:fatal")
        assert plan.hit("worker.start", None) is not None

    def test_prefix_matches_at_dot_boundary(self):
        plan = FaultPlan("worker:fatal*inf")
        assert plan.hit("worker.start", "any") is not None
        assert plan.hit("worker.mid", "any") is not None

    def test_prefix_does_not_match_mid_word(self):
        plan = FaultPlan("work:fatal*inf")
        assert plan.hit("worker.start", None) is None

    def test_unrelated_site_never_fires(self):
        plan = FaultPlan("cache.read:corrupt")
        assert plan.hit("io.write", None) is None


class TestEvaluation:
    def test_nth_occurrence_counts_per_plan(self):
        plan = FaultPlan("cache.read:corrupt@2")
        assert plan.hit("cache.read", "qcd") is None
        assert plan.hit("cache.read", "qcd") is not None
        assert plan.hit("cache.read", "qcd") is None  # only the 2nd

    def test_unqualified_clause_fires_on_every_hit_while_armed(self):
        plan = FaultPlan("cache.read:corrupt")
        assert plan.hit("cache.read", None) is not None
        assert plan.hit("cache.read", None) is not None

    def test_program_qualifier_filters_hits(self):
        plan = FaultPlan("worker:crash@gcc")
        assert plan.hit("worker.start", "qcd") is None
        assert plan.hit("worker.start", "gcc") is not None

    def test_attempt_gating_default_first_attempt_only(self):
        assert FaultPlan("worker:fatal", attempt=1).hit("worker.start", None) \
            is not None
        assert FaultPlan("worker:fatal", attempt=2).hit("worker.start", None) \
            is None

    def test_attempt_gating_times_and_inf(self):
        assert FaultPlan("worker:fatal*2", attempt=2).hit("worker.start", None) \
            is not None
        assert FaultPlan("worker:fatal*2", attempt=3).hit("worker.start", None) \
            is None
        assert FaultPlan("worker:fatal*inf", attempt=99).hit("worker.start", None) \
            is not None

    def test_probability_is_deterministic_per_seed_and_scope(self):
        def schedule(seed, scope):
            plan = FaultPlan("io.write:oserror@0.5", seed=seed, scope=scope)
            return [plan.hit("io.write", None) is not None for _ in range(64)]

        assert schedule(7, "gcc") == schedule(7, "gcc")
        assert schedule(7, "gcc") != schedule(8, "gcc")
        assert schedule(7, "gcc") != schedule(7, "qcd")
        assert any(schedule(7, "gcc")) and not all(schedule(7, "gcc"))

    def test_first_firing_clause_wins_but_all_counters_advance(self):
        plan = FaultPlan("cache.read:corrupt@2,cache.read:oserror@2")
        assert plan.hit("cache.read", None) is None
        fired = plan.hit("cache.read", None)
        assert fired is not None and fired.action == "corrupt"

    def test_adding_a_clause_does_not_perturb_others(self):
        lone = FaultPlan("io.write:oserror@3")
        paired = FaultPlan("cache.read:corrupt,io.write:oserror@3")
        lone_fires = [lone.hit("io.write", None) is not None for _ in range(4)]
        paired.hit("cache.read", None)
        paired_fires = [
            paired.hit("io.write", None) is not None for _ in range(4)
        ]
        assert lone_fires == paired_fires == [False, False, True, False]
