"""Chaos suite: seeded fault plans driven through the real CLI.

The resilience contract under test: a run with a single injected fault
either produces tables **bit-identical** to a clean run (the fault was
recovered) or exits with a classified error / partial result and a valid
manifest — never a hang, a raw traceback, or silently wrong numbers.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.cli import (
    EXIT_PARTIAL, EXIT_PIPELINE, EXIT_TRANSIENT, EXIT_USAGE,
    main as cli_main,
)
from repro.observe.manifest import load_manifest

PROGRAMS = ("qcd", "gcc")  # the two quickest smoke workloads


def _run_cli(tmp_path, label, *extra):
    """One smoke-scale CLI run; returns (exit_code, rendered report)."""
    out = tmp_path / f"{label}.txt"
    code = cli_main([
        "table4", "--scale", "smoke", "--programs", *PROGRAMS,
        "--cache-dir", str(tmp_path / f"{label}-cache"),
        "--quiet", "--out", str(out), *extra,
    ])
    return code, (out.read_text() if out.exists() else "")


@pytest.fixture(scope="module")
def clean_report(tmp_path_factory):
    """The fault-free reference output every recovery must reproduce."""
    tmp_path = tmp_path_factory.mktemp("chaos_clean")
    code, text = _run_cli(tmp_path, "clean")
    assert code == 0
    assert text
    return text


class TestRecoveredFaults:
    """Faults the pipeline must absorb: output bit-identical to clean."""

    def test_worker_crash_is_retried_bit_identical(
        self, tmp_path, clean_report
    ):
        # SIGKILL mid-run (satellite: the parent sees BrokenProcessPool,
        # recreates the pool, and the retry must reproduce every number).
        code, text = _run_cli(
            tmp_path, "crash", "--jobs", "2",
            "--inject-faults", "worker:crash@gcc", "--fault-seed", "7",
        )
        assert code == 0
        assert text == clean_report

    def test_hung_worker_is_killed_and_retried(
        self, tmp_path, clean_report, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "30")
        start = time.monotonic()
        code, text = _run_cli(
            tmp_path, "hang", "--jobs", "2", "--worker-timeout", "3",
            "--inject-faults", "worker:hang@gcc",
        )
        elapsed = time.monotonic() - start
        assert code == 0
        assert text == clean_report
        assert elapsed < 25  # the watchdog, not the hang, set the pace

    def test_corrupt_cache_read_recomputes(self, tmp_path, clean_report):
        label = "corrupt"
        code, _ = _run_cli(tmp_path, label)  # warm the cache
        assert code == 0
        code, text = _run_cli(
            tmp_path, label, "--inject-faults", "cache.read:corrupt",
        )
        assert code == 0
        assert text == clean_report

    def test_unwritable_cache_degrades_to_cacheless(
        self, tmp_path, clean_report
    ):
        # cache-dir under a regular file: every mkdir/write raises an
        # OSError (chmod tricks don't bind when tests run as root).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        out = tmp_path / "ro.txt"
        code = cli_main([
            "table4", "--scale", "smoke", "--programs", *PROGRAMS,
            "--cache-dir", str(blocker / "cache"),
            "--quiet", "--out", str(out),
        ])
        assert code == 0
        assert out.read_text() == clean_report

    def test_injected_write_oserror_degrades_to_cacheless(
        self, tmp_path, clean_report
    ):
        code, text = _run_cli(
            tmp_path, "wfault", "--inject-faults", "io.write:oserror*inf",
            "--retries", "0",
        )
        assert code == 0
        assert text == clean_report

    def test_serial_and_parallel_recoveries_match(
        self, tmp_path, clean_report
    ):
        code, serial = _run_cli(
            tmp_path, "serial", "--jobs", "1",
            "--inject-faults", "cache.read:corrupt", "--fault-seed", "7",
        )
        assert code == 0
        code, parallel = _run_cli(
            tmp_path, "par", "--jobs", "2",
            "--inject-faults", "worker:crash@gcc", "--fault-seed", "7",
        )
        assert code == 0
        assert serial == parallel == clean_report


class TestSharedMemoryCleanup:
    """The shm trace plane must not leak segments on any exit path.

    Segments carry the auditable ``repro-trace-`` prefix, so leak
    checks are a ``/dev/shm`` glob.  Each scenario warms the trace
    cache and drops the sim cache first — that is the configuration in
    which the parent publishes segments for the workers to attach to.
    """

    @staticmethod
    def _drop_sim_cache(tmp_path, label):
        dropped = 0
        for entry in (tmp_path / f"{label}-cache").glob("*-sim-*.pkl"):
            entry.unlink()
            dropped += 1
        assert dropped, "warm-up did not populate the sim cache"

    @staticmethod
    def _leaked_segments():
        import glob

        return glob.glob("/dev/shm/repro-trace-*")

    def test_worker_crash_leaks_no_segments(self, tmp_path, clean_report):
        # The crashed worker dies attached; the parent must still
        # reclaim its segment (release on retry completion + the
        # scheduler's finally) and the retry must reproduce every
        # number while reattaching to the same published trace.
        label = "shmcrash"
        code, _ = _run_cli(tmp_path, label)  # warm both caches
        assert code == 0
        self._drop_sim_cache(tmp_path, label)
        code, text = _run_cli(
            tmp_path, label, "--jobs", "2",
            "--inject-faults", "worker:crash@gcc", "--fault-seed", "7",
        )
        assert code == 0
        assert text == clean_report
        assert not self._leaked_segments()

    def test_hung_worker_kill_leaks_no_segments(
        self, tmp_path, clean_report, monkeypatch
    ):
        # Watchdog SIGKILL is the harshest detach: no worker-side
        # cleanup runs at all.
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "30")
        label = "shmhang"
        code, _ = _run_cli(tmp_path, label)
        assert code == 0
        self._drop_sim_cache(tmp_path, label)
        code, text = _run_cli(
            tmp_path, label, "--jobs", "2", "--worker-timeout", "3",
            "--inject-faults", "worker:hang@gcc",
        )
        assert code == 0
        assert text == clean_report
        assert not self._leaked_segments()

    def test_aborting_run_leaks_no_segments(self, tmp_path):
        # Fatal failure aborts the scheduler mid-flight; the finally
        # path must still unlink every published segment.
        label = "shmabort"
        code, _ = _run_cli(tmp_path, label)
        assert code == 0
        self._drop_sim_cache(tmp_path, label)
        code, _ = _run_cli(
            tmp_path, label, "--jobs", "2",
            "--inject-faults", "worker:fatal@gcc*inf",
        )
        assert code == EXIT_PIPELINE
        assert not self._leaked_segments()


class TestClassifiedFailures:
    """Faults that must surface as classified exits, never tracebacks."""

    def test_persistent_fatal_fault_exits_4_with_one_line(
        self, tmp_path, capsys
    ):
        code, _ = _run_cli(
            tmp_path, "fatal", "--jobs", "2",
            "--inject-faults", "worker:fatal@gcc*inf",
        )
        assert code == EXIT_PIPELINE
        err = capsys.readouterr().err
        assert "error: PipelineError" in err
        assert "Traceback" not in err

    def test_persistent_transient_fault_exits_6_after_retries(
        self, tmp_path, capsys
    ):
        code, _ = _run_cli(
            tmp_path, "transient", "--jobs", "2", "--retries", "1",
            "--inject-faults", "worker:oserror@gcc*inf",
        )
        assert code == EXIT_TRANSIENT
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err

    def test_bad_fault_spec_is_a_usage_error(self, tmp_path, capsys):
        code, _ = _run_cli(tmp_path, "badspec", "--inject-faults", "nope")
        assert code == EXIT_USAGE
        assert "Traceback" not in capsys.readouterr().err

    def test_abort_cancels_pending_work(self, tmp_path, monkeypatch):
        # Regression (satellite): a fatal failure must tear the pool down
        # immediately — not wait for a slow sibling worker to finish.
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "60")
        start = time.monotonic()
        code, _ = _run_cli(
            tmp_path, "abort", "--jobs", "2",
            "--inject-faults", "worker.mid:fatal@qcd*inf,worker.mid:hang@gcc*inf",
        )
        elapsed = time.monotonic() - start
        assert code == EXIT_PIPELINE
        assert elapsed < 45  # did not sit out the 60s hang


class TestKeepGoing:
    """--keep-going: partial tables, explicit gaps, auditable manifest."""

    def test_partial_run_exits_3_with_failures_section(self, tmp_path):
        manifest_path = tmp_path / "partial.json"
        code, text = _run_cli(
            tmp_path, "partial", "--jobs", "2", "--keep-going",
            "--inject-faults", "worker:fatal@gcc*inf",
            "--manifest", str(manifest_path),
        )
        assert code == EXIT_PARTIAL
        assert "PARTIAL RESULTS" in text
        assert "gcc" in text.split("PARTIAL RESULTS", 1)[1]
        manifest = load_manifest(manifest_path)  # validates on read
        (record,) = manifest.failures
        assert record["program"] == "gcc"
        assert record["error"] == "PipelineError"
        assert record["attempts"] >= 1
        assert record["elapsed_s"] >= 0

    def test_surviving_programs_render_normally(self, tmp_path, clean_report):
        code, text = _run_cli(
            tmp_path, "survivors", "--jobs", "2", "--keep-going",
            "--inject-faults", "worker:fatal@gcc*inf",
        )
        assert code == EXIT_PARTIAL
        # qcd's rows are present and identical to the clean run's ...
        for line in clean_report.splitlines():
            if "qcd" in line:
                assert line in text
        # ... while gcc's data rows are absent from the tables.
        table_part = text.split("PARTIAL RESULTS", 1)[0]
        clean_gcc = [l for l in clean_report.splitlines()
                     if "gcc" in l and any(c.isdigit() for c in l)]
        assert clean_gcc and not any(l in table_part for l in clean_gcc)

    def test_serial_keep_going_records_failures_too(self, tmp_path):
        # The worker:* sites only exist in pool workers; serially a
        # fatal fault from inside the pipeline must be recorded the
        # same way (cache.write carries the program qualifier).
        code, text = _run_cli(
            tmp_path, "serialpartial", "--jobs", "1", "--keep-going",
            "--inject-faults", "cache.write:fatal@gcc*inf",
        )
        assert code == EXIT_PARTIAL
        assert "PARTIAL RESULTS" in text

    def test_keep_going_with_no_failures_exits_0(self, tmp_path, clean_report):
        code, text = _run_cli(tmp_path, "ok", "--keep-going")
        assert code == 0
        assert text == clean_report
