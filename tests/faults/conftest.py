"""Shared fixtures for the fault-injection suite.

Every test here must leave the process clean: no installed fault plan,
no leaked ``REPRO_FAULTS``/``REPRO_FAULT_SEED`` environment, and the
observe registry back where it started.
"""

from __future__ import annotations

import os

import pytest

from repro import faults, observe

_FAULT_ENV = ("REPRO_FAULTS", "REPRO_FAULT_SEED", "REPRO_FAULT_SCOPE",
              "REPRO_FAULT_HANG_S")


@pytest.fixture(autouse=True)
def clean_fault_state():
    """No plan installed and no fault env leaks, before and after."""
    saved = {name: os.environ.pop(name, None) for name in _FAULT_ENV}
    faults.clear_plan()
    yield
    faults.clear_plan()
    for name, value in saved.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value


@pytest.fixture()
def observing():
    was_enabled = observe.is_enabled()
    observe.reset()
    observe.enable()
    yield observe.get_registry()
    if not was_enabled:
        observe.disable()
    observe.reset()
