"""Faultpoint runtime: install/clear, env activation, triggers, classify."""

from __future__ import annotations

import pytest

from repro import faults, observe
from repro.errors import (
    FaultSpecError, PipelineError, SessionError, TraceFormatError,
    WorkerTimeoutError,
)
from repro.faults import (
    InjectedCorruption, InjectedFault, InjectedOSError, classify_failure,
    faultpoint,
)

try:
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    BrokenProcessPool = None


class TestLifecycle:
    def test_disabled_faultpoint_is_a_noop(self):
        assert not faults.is_active()
        faultpoint("cache.read", program="qcd")  # must not raise

    def test_install_and_clear(self):
        faults.install("cache.read:corrupt")
        assert faults.is_active()
        assert faults.active_plan().spec == "cache.read:corrupt"
        faults.clear_plan()
        assert not faults.is_active()
        faultpoint("cache.read")

    def test_install_rejects_bad_spec(self):
        with pytest.raises(FaultSpecError):
            faults.install("cache.read:explode")
        assert not faults.is_active()

    def test_install_from_env(self):
        plan = faults.install_from_env(
            {"REPRO_FAULTS": "worker:crash@gcc", "REPRO_FAULT_SEED": "7"}
        )
        assert plan is not None and plan.seed == 7
        assert faults.is_active()

    def test_install_from_env_without_spec_is_a_noop(self):
        assert faults.install_from_env({}) is None
        assert not faults.is_active()


class TestTriggers:
    def test_corrupt_raises_injected_corruption(self):
        faults.install("cache.read:corrupt")
        with pytest.raises(InjectedCorruption):
            faultpoint("cache.read", program="qcd")

    def test_oserror_is_a_real_oserror(self):
        faults.install("io.write:oserror")
        with pytest.raises(OSError) as excinfo:
            faultpoint("io.write")
        assert isinstance(excinfo.value, InjectedOSError)
        assert isinstance(excinfo.value, InjectedFault)

    def test_fatal_raises_pipeline_error(self):
        faults.install("worker:fatal")
        with pytest.raises(PipelineError):
            faultpoint("worker.start", program="gcc")

    def test_injected_faults_are_not_repro_errors(self):
        # The retry classifier must see injected faults as external
        # failures, not as classified repro errors.
        from repro.errors import ReproError
        assert not issubclass(InjectedCorruption, ReproError)
        assert not issubclass(InjectedOSError, ReproError)

    def test_trigger_counts_and_notes(self, observing):
        faults.install("cache.read:corrupt")
        with pytest.raises(InjectedCorruption):
            faultpoint("cache.read", program="qcd")
        snapshot = observing.snapshot()
        assert snapshot["counters"]["fault.injected.cache.read.corrupt"] == 1
        assert "cache.read:corrupt@qcd" in snapshot["notes"]["fault.injected"]

    def test_hang_respects_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "0.05")
        faults.install("worker:hang")
        import time
        start = time.monotonic()
        faultpoint("worker.mid", program="gcc")
        elapsed = time.monotonic() - start
        assert 0.04 <= elapsed < 2.0


class TestClassifyFailure:
    def test_worker_timeout_is_transient_despite_being_a_repro_error(self):
        # WorkerTimeoutError subclasses PipelineError, so the order of
        # the classifier's checks matters: watchdog kills must retry.
        assert classify_failure(WorkerTimeoutError("t")) == "transient"

    @pytest.mark.parametrize("exc", [
        OSError("disk"),
        InjectedCorruption("x"),
        InjectedOSError(5, "x"),
    ])
    def test_io_and_injected_faults_are_transient(self, exc):
        assert classify_failure(exc) == "transient"

    def test_broken_process_pool_is_transient(self):
        assert classify_failure(BrokenProcessPool("dead")) == "transient"

    @pytest.mark.parametrize("exc", [
        PipelineError("p"),
        SessionError("s"),
        TraceFormatError("t"),
        ValueError("bug"),
        KeyError("bug"),
    ])
    def test_repro_errors_and_bugs_are_fatal(self, exc):
        assert classify_failure(exc) == "fatal"
