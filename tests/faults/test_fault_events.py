"""Flight-recorder events from the fault paths.

Every armed plan and triggered faultpoint leaves a structured event,
and the cache-less (readonly) degradation warns out loud instead of
silently downgrading — the satellite requirements of the event-log PR.
"""

from __future__ import annotations

import pytest

from repro import faults, observe
from repro.experiments.pipeline import ExperimentConfig, load_program_data

PROGRAM = "gcc"


@pytest.fixture()
def recording():
    was_enabled = observe.events_enabled()
    run_id = observe.enable_events()
    yield run_id
    observe.get_recorder().reset()
    if not was_enabled:
        observe.disable_events()


def _events(category=None):
    entries = observe.get_recorder().entries()
    if category is None:
        return entries
    return [e for e in entries if e.category == category]


def test_install_emits_fault_armed(recording):
    faults.install("cache.read:corrupt@gcc", seed=7, scope="cli", attempt=2)
    (armed,) = _events("fault.armed")
    assert armed.severity == "INFO"
    assert armed.data == {
        "spec": "cache.read:corrupt@gcc", "seed": 7,
        "scope": "cli", "attempt": 2,
    }


def test_trigger_emits_fault_triggered_with_context(recording):
    faults.install("io.write:corrupt")
    with pytest.raises(faults.InjectedCorruption):
        faults.faultpoint("io.write", program=PROGRAM, kind="sim")
    (triggered,) = _events("fault.triggered")
    assert triggered.severity == "WARNING"
    assert triggered.data == {
        "site": "io.write", "action": "corrupt",
        "program": PROGRAM, "kind": "sim",
    }


def test_faultpoints_stay_quiet_with_events_off():
    observe.disable_events()
    before = len(observe.get_recorder().entries())
    faults.install("cache.read:corrupt")
    with pytest.raises(faults.InjectedCorruption):
        faults.faultpoint("cache.read")
    assert len(observe.get_recorder().entries()) == before


def test_readonly_fallback_warns_with_event_and_note(
        tmp_path, observing, recording):
    """An injected cache-write OSError degrades to cache-less mode and
    says so: a WARNING ``cache.readonly`` event plus the note list —
    never a silent downgrade."""
    faults.install("cache.write:oserror", scope=PROGRAM)
    config = ExperimentConfig(
        programs=(PROGRAM,), scale="smoke", cache_dir=tmp_path / "cache"
    )
    messages = []
    data = load_program_data(PROGRAM, config, messages.append)
    assert data.result.counts  # the run still produced data

    readonly = _events("cache.readonly")
    assert readonly, "cache-less degradation must emit cache.readonly"
    assert all(e.severity == "WARNING" for e in readonly)
    assert readonly[0].data["program"] == PROGRAM
    assert readonly[0].data["error"] == "InjectedOSError"
    assert {e.data["kind"] for e in readonly} <= {"trace", "sim"}

    snapshot = observing.snapshot()
    assert snapshot["counters"]["cache.readonly"] >= 1
    assert snapshot["notes"]["cache.readonly"]
    assert any("unwritable" in message for message in messages)
    # The injection itself is on the record too, matched one-to-one.
    assert len(_events("fault.triggered")) >= len(readonly)


def test_unwritable_cache_dir_warns_without_injection(tmp_path, recording):
    """The real thing (cache dir nested under a file) takes the same
    path as the injected OSError."""
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory")
    config = ExperimentConfig(
        programs=(PROGRAM,), scale="smoke", cache_dir=blocker / "cache"
    )
    data = load_program_data(PROGRAM, config)
    assert data.result.counts
    readonly = _events("cache.readonly")
    assert readonly and all(e.severity == "WARNING" for e in readonly)
