"""Tests for the address->monitor mapping structures (Appendix A.5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.monitor_map import BitmapMonitorMap, IntervalMonitorMap
from repro.core.wms import Monitor
from repro.errors import MonitorNotFound, WmsError

MAPS = [BitmapMonitorMap, IntervalMonitorMap]


@pytest.mark.parametrize("map_cls", MAPS)
class TestBasics:
    def test_empty_map_misses(self, map_cls):
        assert map_cls().lookup(0x100, 0x104) == ()

    def test_install_then_hit(self, map_cls):
        mmap = map_cls()
        monitor = Monitor(0x100, 0x110)
        mmap.install(monitor)
        assert mmap.lookup(0x104, 0x108) == (monitor,)

    def test_miss_outside(self, map_cls):
        mmap = map_cls()
        mmap.install(Monitor(0x100, 0x110))
        assert mmap.lookup(0x110, 0x114) == ()
        assert mmap.lookup(0x0FC, 0x100) == ()

    def test_remove_then_miss(self, map_cls):
        mmap = map_cls()
        monitor = Monitor(0x100, 0x110)
        mmap.install(monitor)
        mmap.remove(monitor)
        assert mmap.lookup(0x100, 0x104) == ()
        assert len(mmap) == 0

    def test_remove_unknown_raises(self, map_cls):
        with pytest.raises(MonitorNotFound):
            map_cls().remove(Monitor(0x100, 0x104))

    def test_overlapping_monitors_both_reported(self, map_cls):
        mmap = map_cls()
        first = Monitor(0x100, 0x120)
        second = Monitor(0x110, 0x130)
        mmap.install(first)
        mmap.install(second)
        hits = mmap.lookup(0x110, 0x114)
        assert set(hits) == {first, second}

    def test_identical_ranges_distinct_monitors(self, map_cls):
        mmap = map_cls()
        first = Monitor(0x100, 0x104)
        second = Monitor(0x100, 0x104)
        mmap.install(first)
        mmap.install(second)
        mmap.remove(first)
        assert mmap.lookup(0x100, 0x104) == (second,)

    def test_multi_word_write_single_report(self, map_cls):
        mmap = map_cls()
        monitor = Monitor(0x100, 0x120)
        mmap.install(monitor)
        hits = mmap.lookup(0x100, 0x118)
        assert hits.count(monitor) == 1

    def test_len_counts_monitors(self, map_cls):
        mmap = map_cls()
        mmap.install(Monitor(0x100, 0x104))
        mmap.install(Monitor(0x200, 0x204))
        assert len(mmap) == 2


class TestMonitorDescriptor:
    def test_empty_range_rejected(self):
        with pytest.raises(WmsError):
            Monitor(0x100, 0x100)

    def test_intersects(self):
        monitor = Monitor(0x100, 0x110)
        assert monitor.intersects(0x10C, 0x110)
        assert not monitor.intersects(0x110, 0x114)

    def test_size(self):
        assert Monitor(0x100, 0x110).size_bytes == 16

    def test_identity_semantics(self):
        assert Monitor(0x100, 0x104) != Monitor(0x100, 0x104)


class TestBitmapSpecifics:
    def test_covered_words(self):
        mmap = BitmapMonitorMap()
        mmap.install(Monitor(0x100, 0x110))  # 4 words
        assert mmap.covered_words() == 4

    def test_unaligned_monitor_rounds_to_words(self):
        """Footnote 7: monitors are word-aligned; clients compensate."""
        mmap = BitmapMonitorMap()
        monitor = Monitor(0x101, 0x103)
        mmap.install(monitor)
        assert mmap.lookup(0x100, 0x104) == (monitor,)


# ---------------------------------------------------------------------------
# Property test: both structures agree with a naive oracle.
# ---------------------------------------------------------------------------

_ranges = st.tuples(st.integers(0, 120), st.integers(1, 12)).map(
    lambda pair: (pair[0] * 4, pair[0] * 4 + pair[1] * 4)
)


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["install", "remove", "lookup"]), _ranges),
        min_size=1,
        max_size=50,
    )
)
@pytest.mark.parametrize("map_cls", MAPS)
def test_against_naive_oracle(map_cls, operations):
    """Random install/remove/lookup sequences match a brute-force list."""
    mmap = map_cls()
    oracle = []
    for op, (begin, end) in operations:
        if op == "install":
            monitor = Monitor(begin, end)
            mmap.install(monitor)
            oracle.append(monitor)
        elif op == "remove" and oracle:
            victim = oracle.pop(len(oracle) // 2)
            mmap.remove(victim)
        else:
            expected = {m for m in oracle if m.intersects(begin, end)}
            assert set(mmap.lookup(begin, end)) == expected
    # Final sweep: every word of every live monitor is found.
    for monitor in oracle:
        for word in range(monitor.begin & ~3, monitor.end, 4):
            assert monitor in mmap.lookup(word, word + 4)
