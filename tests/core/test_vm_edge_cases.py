"""Edge-case battery for the VirtualMemory strategy.

The VM strategy has the most intricate state (page protection counts,
fault re-protection, shared pages between monitors); these tests pin
down the corners: monitors sharing pages, monitors spanning pages,
page-size interaction, and install/remove during execution.
"""

import pytest

from repro.core import VirtualMemoryWms
from repro.machine import Cpu, Memory, load_program
from repro.machine.paging import PageTable, Protection
from repro.minic.compiler import compile_source
from repro.minic.runtime import Runtime
from repro.sim_os import SimOs


def build(source: str, page_size: int = 4096):
    image = load_program(compile_source(source, "vm-edge"))
    cpu = Cpu(Memory(), PageTable(page_size))
    os = SimOs(cpu)
    runtime = Runtime(cpu)
    runtime.install()
    cpu.attach(image)
    wms = VirtualMemoryWms(cpu, os)
    return cpu, os, wms, image


SOURCE = """
int a;
int b;
int big[3000];    /* spans multiple 4K pages */
int main() {
  int i;
  a = 1;
  b = 2;
  for (i = 0; i < 5; i++) big[i * 1024 % 3000] = i;
  a = 3;
  return a + b;
}
"""


class TestSharedPages:
    def test_two_monitors_one_page_remove_one(self):
        """Removing one of two monitors on a page keeps it protected."""
        cpu, os, wms, image = build(SOURCE)
        a = image.global_var("a")
        b = image.global_var("b")
        monitor_a = wms.install_monitor(a.address, a.address + 4)
        wms.install_monitor(b.address, b.address + 4)
        wms.remove_monitor(monitor_a)
        assert cpu.page_table.is_write_protected(a.address)
        state = cpu.run("main")
        assert state.exit_value == 5
        # Only writes to b notify now.
        assert all(n.begin == b.address for n in wms.notifications)
        assert wms.stats.hits == 1

    def test_page_unprotected_when_last_monitor_leaves(self):
        cpu, os, wms, image = build(SOURCE)
        a = image.global_var("a")
        monitor = wms.install_monitor(a.address, a.address + 4)
        assert cpu.page_table.is_write_protected(a.address)
        wms.remove_monitor(monitor)
        assert not cpu.page_table.is_write_protected(a.address)


class TestSpanningMonitors:
    def test_monitor_across_page_boundary(self):
        cpu, os, wms, image = build(SOURCE)
        big = image.global_var("big")
        # A monitor covering the whole 12000-byte array protects every
        # page it touches.
        wms.install_monitor(big.address, big.address + big.size_bytes)
        pages = cpu.page_table.pages_of_range(big.address, big.address + big.size_bytes)
        assert len(pages) >= 3
        for page in pages:
            assert cpu.page_table.protection_of(page) is Protection.READ
        state = cpu.run("main")
        assert wms.stats.hits == 5

    def test_page_size_changes_fault_footprint(self):
        """With 16K pages, `a`'s monitor drags `big`'s first words onto
        the protected page, turning their writes into faulting misses."""
        small_cpu, _, small_wms, small_image = build(SOURCE, page_size=1024)
        a = small_image.global_var("a")
        small_wms.install_monitor(a.address, a.address + 4)
        small_cpu.run("main")

        large_cpu, _, large_wms, large_image = build(SOURCE, page_size=65536)
        a_large = large_image.global_var("a")
        large_wms.install_monitor(a_large.address, a_large.address + 4)
        large_cpu.run("main")

        assert large_wms.stats.checks > small_wms.stats.checks
        assert large_wms.stats.hits == small_wms.stats.hits == 2
        assert large_cpu.cycles > small_cpu.cycles


class TestDynamicInstall:
    def test_install_mid_run_from_callback(self):
        """A monitor installed from a notification callback catches
        subsequent writes (the debugger's install-on-entry pattern)."""
        cpu, os, wms, image = build(SOURCE)
        a = image.global_var("a")
        b = image.global_var("b")
        installed = []

        def on_hit(notification):
            if not installed:
                installed.append(wms.install_monitor(b.address, b.address + 4))

        wms.callback = on_hit
        wms.install_monitor(a.address, a.address + 4)
        cpu.run("main")
        values = [(n.begin, n.value) for n in wms.notifications]
        assert (a.address, 1) in values
        assert (b.address, 2) in values
        assert (a.address, 3) in values

    def test_remove_all_cleans_pages(self):
        cpu, os, wms, image = build(SOURCE)
        a = image.global_var("a")
        big = image.global_var("big")
        wms.install_monitor(a.address, a.address + 4)
        wms.install_monitor(big.address, big.address + big.size_bytes)
        wms.remove_all()
        assert not cpu.page_table.write_protected
        assert wms.page_monitor_count == {}

    def test_faults_charge_more_at_higher_counts(self):
        """Cycle cost scales with fault count: the VM pathology."""
        cpu, os, wms, image = build(SOURCE)
        a = image.global_var("a")
        wms.install_monitor(a.address, a.address + 4)
        cpu.run("main")
        # Both hits and the same-page miss (b shares a's page) faulted.
        assert os.counters["faults_delivered"] == wms.stats.checks >= 3
        assert os.counters["stores_emulated"] == wms.stats.checks
