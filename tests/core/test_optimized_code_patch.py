"""Tests for the section-9 loop-optimized CodePatch WMS.

The optimization caches per-site miss results; correctness hinges on two
invalidation rules: a site's cache only applies while the write target
is unchanged (loop-invariant case), and *any* install/remove bumps the
epoch, re-enabling full checks everywhere.
"""

import pytest

from repro.core import CodePatchWms, OptimizedCodePatchWms
from repro.machine import Cpu, Memory, load_program
from repro.minic.compiler import compile_source
from repro.minic.instrument import apply_code_patch
from repro.minic.runtime import Runtime

SOURCE = """
int watched;
int other;
int arr[8];

int main() {
  int i;
  for (i = 0; i < 10; i = i + 1) {
    other = i;            /* same site, same target: cacheable miss */
    arr[i % 8] = i;       /* same site, moving target: not cacheable */
  }
  watched = 42;
  return watched;
}
"""


def build(wms_cls):
    program = apply_code_patch(compile_source(SOURCE, "opt-test"))
    image = load_program(program)
    cpu = Cpu(Memory())
    runtime = Runtime(cpu)
    runtime.install()
    cpu.attach(image)
    wms = wms_cls(cpu)
    return cpu, wms, image


class TestCorrectness:
    def test_same_notifications_as_plain(self):
        plain_cpu, plain_wms, plain_image = build(CodePatchWms)
        var = plain_image.global_var("watched")
        plain_wms.install_monitor(var.address, var.address + 4)
        plain_cpu.run("main")

        opt_cpu, opt_wms, opt_image = build(OptimizedCodePatchWms)
        var = opt_image.global_var("watched")
        opt_wms.install_monitor(var.address, var.address + 4)
        opt_cpu.run("main")

        assert [(n.begin, n.value) for n in opt_wms.notifications] == [
            (n.begin, n.value) for n in plain_wms.notifications
        ]

    def test_cheaper_than_plain(self):
        plain_cpu, plain_wms, plain_image = build(CodePatchWms)
        var = plain_image.global_var("watched")
        plain_wms.install_monitor(var.address, var.address + 4)
        plain_cpu.run("main")

        opt_cpu, opt_wms, opt_image = build(OptimizedCodePatchWms)
        var = opt_image.global_var("watched")
        opt_wms.install_monitor(var.address, var.address + 4)
        opt_cpu.run("main")

        assert opt_cpu.cycles < plain_cpu.cycles
        assert opt_wms.stats_cached_misses > 0
        assert opt_wms.stats.checks == plain_wms.stats.checks

    def test_hits_never_cached(self):
        """A hit site keeps notifying on every iteration."""
        source = """
        int watched;
        int main() {
          int i;
          for (i = 0; i < 6; i = i + 1) { watched = i; }
          return watched;
        }
        """
        program = apply_code_patch(compile_source(source, "hits"))
        image = load_program(program)
        cpu = Cpu(Memory())
        Runtime(cpu).install()
        cpu.attach(image)
        wms = OptimizedCodePatchWms(cpu)
        var = image.global_var("watched")
        wms.install_monitor(var.address, var.address + 4)
        cpu.run("main")
        assert [n.value for n in wms.notifications] == [0, 1, 2, 3, 4, 5]

    def test_install_invalidates_cached_misses(self):
        """A monitor installed mid-run must catch writes whose site had a
        cached miss from before the install — the 'dynamically patch the
        loop body' correctness requirement of section 9."""
        source = """
        int target;
        int phase;
        int main() {
          int i;
          for (i = 0; i < 10; i = i + 1) {
            target = i;                 /* miss until monitor installed */
            if (i == 4) phase = 1;      /* debugger installs here */
          }
          return target;
        }
        """
        program = apply_code_patch(compile_source(source, "mid"))
        image = load_program(program)
        cpu = Cpu(Memory())
        Runtime(cpu).install()
        cpu.attach(image)
        wms = OptimizedCodePatchWms(cpu)

        target = image.global_var("target")
        phase = image.global_var("phase")

        # Install the real monitor from a callback on `phase` — i.e. while
        # the loop is mid-flight and `target`'s site has a cached miss.
        sentinel = wms.install_monitor(phase.address, phase.address + 4)
        installed = []

        def on_phase(notification):
            if not installed:
                installed.append(
                    wms.install_monitor(target.address, target.address + 4)
                )

        wms.callback = on_phase
        cpu.run("main")
        target_hits = [
            n.value for n in wms.notifications if n.begin == target.address
        ]
        # Writes i=5..9 happen after the install and must all notify.
        assert target_hits == [5, 6, 7, 8, 9]

    def test_remove_invalidates_too(self):
        cpu, wms, image = build(OptimizedCodePatchWms)
        var = image.global_var("watched")
        monitor = wms.install_monitor(var.address, var.address + 4)
        epoch_before = wms._epoch
        wms.remove_monitor(monitor)
        assert wms._epoch > epoch_before

    def test_detach_restores_cpu(self):
        cpu, wms, image = build(OptimizedCodePatchWms)
        wms.detach()
        assert cpu.check_hook is None
