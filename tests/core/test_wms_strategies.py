"""Behavioral tests for the four live WMS implementations.

Every strategy must deliver the same notifications for the same program
and monitors — they differ only in mechanism and cost.  These tests run
one program under all four and compare.
"""

import pytest

from repro.core import (
    CodePatchWms,
    NativeHardwareWms,
    TrapPatchWms,
    VirtualMemoryWms,
)
from repro.errors import MonitorRegisterExhausted
from repro.machine import Cpu, Memory, load_program
from repro.machine.monitor_registers import MonitorRegisterFile
from repro.machine.paging import PageTable
from repro.minic.compiler import compile_source
from repro.minic.instrument import apply_code_patch, apply_trap_patch
from repro.minic.runtime import Runtime
from repro.sim_os import SimOs
from repro.units import us_to_cycles

SOURCE = """
int watched;
int other;
int main() {
  int i;
  for (i = 0; i < 5; i = i + 1) {
    watched = i * 10;
    other = i;
  }
  return watched;
}
"""

STRATEGIES = ["native", "vm", "trap", "code"]


def build(strategy: str, n_registers: int = 4, page_size: int = 4096):
    """Assemble machine + OS + runtime + WMS for one strategy."""
    program = compile_source(SOURCE, "wms-test")
    if strategy == "trap":
        program = apply_trap_patch(program)
    elif strategy == "code":
        program = apply_code_patch(program)
    image = load_program(program)
    cpu = Cpu(Memory(), PageTable(page_size), MonitorRegisterFile(n_registers))
    os = SimOs(cpu)
    runtime = Runtime(cpu)
    runtime.install()
    cpu.attach(image)
    if strategy == "native":
        wms = NativeHardwareWms(cpu, os)
    elif strategy == "vm":
        wms = VirtualMemoryWms(cpu, os)
    elif strategy == "trap":
        wms = TrapPatchWms(cpu, os)
    else:
        wms = CodePatchWms(cpu)
    return cpu, os, wms, image


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestAllStrategies:
    def test_hits_watched_variable(self, strategy):
        cpu, os, wms, image = build(strategy)
        var = image.global_var("watched")
        wms.install_monitor(var.address, var.address + var.size_bytes)
        state = cpu.run("main")
        assert state.exit_value == 40
        assert wms.stats.hits == 5
        assert len(wms.notifications) == 5

    def test_notification_payload(self, strategy):
        cpu, os, wms, image = build(strategy)
        var = image.global_var("watched")
        monitor = wms.install_monitor(var.address, var.address + 4)
        cpu.run("main")
        values = [n.value for n in wms.notifications]
        assert values == [0, 10, 20, 30, 40]
        for notification in wms.notifications:
            assert notification.begin == var.address
            assert notification.monitors == (monitor,)
            assert 0 <= notification.pc < len(image.code)

    def test_memory_state_correct_after_run(self, strategy):
        """Monitoring must never change program semantics."""
        cpu, os, wms, image = build(strategy)
        var = image.global_var("watched")
        wms.install_monitor(var.address, var.address + 4)
        cpu.run("main")
        assert cpu.memory.load_word(var.address) == 40
        assert cpu.memory.load_word(image.global_var("other").address) == 4

    def test_no_monitor_no_notifications(self, strategy):
        cpu, os, wms, image = build(strategy)
        state = cpu.run("main")
        assert state.exit_value == 40
        assert wms.notifications == []

    def test_remove_monitor_stops_notifications(self, strategy):
        cpu, os, wms, image = build(strategy)
        var = image.global_var("watched")
        monitor = wms.install_monitor(var.address, var.address + 4)
        wms.remove_monitor(monitor)
        cpu.run("main")
        assert wms.notifications == []

    def test_callback_invoked(self, strategy):
        cpu, os, wms, image = build(strategy)
        var = image.global_var("watched")
        wms.install_monitor(var.address, var.address + 4)
        seen = []
        wms.callback = lambda n: seen.append(n.value)
        cpu.run("main")
        assert seen == [0, 10, 20, 30, 40]

    def test_overhead_charged_to_clock(self, strategy):
        plain_cpu, _, _, plain_image = build("code")  # baseline machine
        # Baseline: unpatched, no WMS.
        baseline_program = compile_source(SOURCE, "baseline")
        baseline_image = load_program(baseline_program)
        cpu0 = Cpu(Memory())
        runtime0 = Runtime(cpu0)
        runtime0.install()
        cpu0.attach(baseline_image)
        base_cycles = cpu0.run("main").cycles

        cpu, os, wms, image = build(strategy)
        var = image.global_var("watched")
        wms.install_monitor(var.address, var.address + 4)
        cpu.run("main")
        assert cpu.cycles > base_cycles


class TestNativeHardwareSpecifics:
    def test_register_exhaustion(self):
        cpu, os, wms, image = build("native", n_registers=2)
        base = image.global_var("watched").address
        wms.install_monitor(base, base + 4)
        wms.install_monitor(base + 4, base + 8)
        with pytest.raises(MonitorRegisterExhausted):
            wms.install_monitor(base + 8, base + 12)

    def test_release_allows_reuse(self):
        cpu, os, wms, image = build("native", n_registers=1)
        base = image.global_var("watched").address
        monitor = wms.install_monitor(base, base + 4)
        wms.remove_monitor(monitor)
        wms.install_monitor(base + 4, base + 8)  # must not raise

    def test_per_hit_cost_is_nh_fault_handler(self):
        cpu, os, wms, image = build("native")
        var = image.global_var("watched")

        cpu_plain, _, _, image_plain = build("native")
        base_cycles = cpu_plain.run("main").cycles

        wms.install_monitor(var.address, var.address + 4)
        cycles = cpu.run("main").cycles
        assert cycles - base_cycles == 5 * us_to_cycles(131)


class TestVirtualMemorySpecifics:
    def test_misses_on_active_page_fault_too(self):
        """`other` shares a page with `watched`: its writes fault as misses."""
        cpu, os, wms, image = build("vm")
        var = image.global_var("watched")
        wms.install_monitor(var.address, var.address + 4)
        cpu.run("main")
        # 10 faults total (5 hits + 5 active-page misses), 5 notifications.
        assert wms.stats.checks == 10
        assert wms.stats.hits == 5

    def test_page_reprotected_after_each_fault(self):
        cpu, os, wms, image = build("vm")
        var = image.global_var("watched")
        wms.install_monitor(var.address, var.address + 4)
        cpu.run("main")
        assert cpu.page_table.is_write_protected(var.address)

    def test_detach_unprotects(self):
        cpu, os, wms, image = build("vm")
        var = image.global_var("watched")
        wms.install_monitor(var.address, var.address + 4)
        wms.detach()
        assert not cpu.page_table.is_write_protected(var.address)

    def test_per_fault_cost_matches_model(self):
        cpu, os, wms, image = build("vm")
        var = image.global_var("watched")

        cpu_plain, _, _, _ = build("vm")
        base_cycles = cpu_plain.run("main").cycles

        monitor = wms.install_monitor(var.address, var.address + 4)
        install_cycles = cpu.cycles  # cost of the install itself
        cycles = cpu.run("main").cycles
        per_fault = us_to_cycles(561) + us_to_cycles(2.75)
        assert cycles - base_cycles - install_cycles == 10 * per_fault


class TestTrapPatchSpecifics:
    def test_every_store_traps_hit_or_miss(self):
        cpu, os, wms, image = build("trap")
        var = image.global_var("watched")
        wms.install_monitor(var.address, var.address + 4)

        cpu_plain, _, _, _ = build("code")
        baseline_program = compile_source(SOURCE, "b")
        stores = None
        image0 = load_program(baseline_program)
        cpu0 = Cpu(Memory())
        Runtime(cpu0).install()
        cpu0.attach(image0)
        stores = cpu0.run("main").stores

        cpu.run("main")
        assert wms.stats.checks == stores


class TestCodePatchSpecifics:
    def test_checks_equal_stores_with_no_kernel_faults(self):
        cpu, os, wms, image = build("code")
        var = image.global_var("watched")
        wms.install_monitor(var.address, var.address + 4)
        state = cpu.run("main")
        assert wms.stats.checks == state.stores
        assert os.counters["faults_delivered"] == 0

    def test_per_check_cost_is_software_lookup(self):
        cpu, os, wms, image = build("code")
        cpu_plain, _, wms_plain, _ = build("code")

        # Same patched image, no monitors: the delta versus a run with a
        # monitor on an *untouched* address must be zero; every check
        # costs the same whether monitors exist or not.
        base = cpu_plain.run("main").cycles
        heap_addr = cpu.layout.heap_base
        wms.install_monitor(heap_addr, heap_addr + 4)
        cycles = cpu.run("main").cycles
        assert cycles - base == wms.timing.software_update_cycles
