"""Histogram percentile satellite: p50/p95/p99 in summaries and reports."""

from __future__ import annotations

import pytest

from repro.observe.report import render_metrics_report

pytestmark = pytest.mark.observe


class TestHistogramPercentiles:
    def test_summary_carries_p95_and_p99(self, observing):
        histogram = observing.histogram("latency")
        for value in range(1, 101):  # 1..100
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["p50"] == pytest.approx(50, abs=1)
        assert summary["p90"] == pytest.approx(90, abs=1)
        assert summary["p95"] == pytest.approx(95, abs=1)
        assert summary["p99"] == pytest.approx(99, abs=1)
        assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]

    def test_report_renders_percentile_columns(self, observing):
        for value in range(100):
            observing.observe_value("latency", float(value))
        report = render_metrics_report(observing)
        header_line = next(
            line for line in report.splitlines() if line.startswith("histogram")
        )
        assert "p50" in header_line
        assert "p95" in header_line
        assert "p99" in header_line
        assert "p90" not in header_line  # replaced by the tail percentiles

    def test_single_observation_percentiles_degenerate(self, observing):
        histogram = observing.histogram("one")
        histogram.observe(7.0)
        summary = histogram.summary()
        assert summary["p50"] == summary["p95"] == summary["p99"] == 7.0
