"""Cross-process snapshot dump/merge (the parallel pipeline's transport)."""

from __future__ import annotations

import pickle

import pytest

from repro import observe
from repro.observe.snapshot import SNAPSHOT_VERSION, dump_snapshot, merge_snapshot

pytestmark = pytest.mark.observe


def _record_worker_activity():
    observe.inc("cache.sim.misses")
    observe.inc("engine.events", 100)
    observe.observe_value("engine.events_per_sec", 5000.0)
    observe.note("cache.sim.written", "entry.pkl")
    with observe.span("program:gcc"):
        with observe.span("simulate", program="gcc"):
            pass


class TestDumpSnapshot:
    def test_payload_is_picklable(self, observing):
        _record_worker_activity()
        payload = dump_snapshot()
        clone = pickle.loads(pickle.dumps(payload))
        assert clone["version"] == SNAPSHOT_VERSION
        assert clone["metrics"]["counters"]["engine.events"] == 100
        assert clone["metrics"]["histograms"]["engine.events_per_sec"] == [5000.0]

    def test_spans_ship_as_records(self, observing):
        _record_worker_activity()
        payload = dump_snapshot()
        paths = [record.path for record in payload["metrics"]["spans"]]
        assert "program:gcc/simulate" in paths


class TestMergeSnapshot:
    def test_counters_add_and_histograms_union(self, observing):
        _record_worker_activity()
        payload = dump_snapshot()
        observe.reset()
        observe.inc("engine.events", 11)
        observe.observe_value("engine.events_per_sec", 7000.0)
        merge_snapshot(payload)
        snapshot = observe.get_registry().snapshot()
        assert snapshot["counters"]["engine.events"] == 111
        assert snapshot["counters"]["cache.sim.misses"] == 1
        # Percentiles recompute over the union of raw observations.
        assert snapshot["histograms"]["engine.events_per_sec"]["count"] == 2
        assert snapshot["histograms"]["engine.events_per_sec"]["min"] == 5000.0
        assert snapshot["notes"]["cache.sim.written"] == ["entry.pkl"]

    def test_spans_graft_under_path_with_clock_offset(self, observing):
        _record_worker_activity()
        payload = dump_snapshot()
        observe.reset()
        merge_snapshot(
            payload, under="pipeline/worker:gcc", clock_offset=100.0,
            attrs={"worker": "gcc"},
        )
        spans = {s["path"]: s for s in observe.get_registry().snapshot()["spans"]}
        grafted = spans["pipeline/worker:gcc/program:gcc/simulate"]
        assert grafted["parent"] == "pipeline/worker:gcc/program:gcc"
        assert grafted["attrs"]["worker"] == "gcc"
        assert grafted["attrs"]["program"] == "gcc"  # existing attr kept
        top = spans["pipeline/worker:gcc/program:gcc"]
        assert top["parent"] == "pipeline/worker:gcc"
        original = next(
            r for r in payload["metrics"]["spans"] if r.path == "program:gcc"
        )
        assert top["start_s"] == pytest.approx(original.start_s + 100.0)

    def test_merge_without_under_keeps_paths(self, observing):
        _record_worker_activity()
        payload = dump_snapshot()
        observe.reset()
        merge_snapshot(payload)
        paths = {s["path"] for s in observe.get_registry().snapshot()["spans"]}
        assert "program:gcc/simulate" in paths

    def test_version_mismatch_rejected(self, observing):
        payload = dump_snapshot()
        payload["version"] = 999
        with pytest.raises(ValueError):
            merge_snapshot(payload)

    def test_profiler_samples_merge_without_double_counting(self, observing):
        observe.enable_profiling(stride=10)
        try:
            observe.get_profiler().record_engine({1: 4})
            payload = dump_snapshot()
            observe.reset()
            merge_snapshot(payload)
            profiler = observe.get_profiler()
            assert profiler.engine_events[1] == 4
            counters = observe.get_registry().snapshot()["counters"]
            # The mirrored profile.* counter merged once, via the
            # registry — merge_samples itself must not re-mirror.
            mirrored = [
                value for name, value in counters.items()
                if name.startswith("profile.engine.event.")
            ]
            assert mirrored == [4]
        finally:
            observe.disable_profiling()
