"""Run-manifest round-trip and schema-validation tests."""

from __future__ import annotations

import json

import pytest

from repro import observe
from repro.errors import ManifestFormatError
from repro.observe.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    environment_fingerprint,
    load_manifest,
    validate_manifest,
)

pytestmark = pytest.mark.observe


def _populated_manifest(registry) -> RunManifest:
    with observe.span("pipeline"):
        with observe.span("program:gcc"):
            with observe.span("compile", program="gcc"):
                pass
            with observe.span("trace", program="gcc"):
                pass
            with observe.span("simulate", program="gcc"):
                pass
    with observe.span("model"):
        pass
    observe.inc("cache.trace.misses")
    observe.inc("cache.sim.hits", 2)
    observe.note("cache.sim.used", "gcc-sim.pkl")
    observe.set_gauge("sessions", 75)
    return RunManifest.from_registry(
        registry, target="table4", config={"scale": "smoke"}
    )


class TestRoundTrip:
    def test_write_load_validate(self, observing, tmp_path):
        manifest = _populated_manifest(observing)
        path = manifest.write(tmp_path / "run.json")
        loaded = load_manifest(path)
        assert loaded.target == "table4"
        assert loaded.config == {"scale": "smoke"}
        assert loaded.schema_version == MANIFEST_SCHEMA_VERSION
        assert loaded.counters == manifest.counters
        assert loaded.stages == manifest.stages
        assert loaded.cache == manifest.cache
        assert [s["path"] for s in loaded.spans] == [s["path"] for s in manifest.spans]

    def test_stages_rolled_up_per_program(self, observing):
        manifest = _populated_manifest(observing)
        assert set(manifest.stages["gcc"]) == {"compile", "trace", "simulate"}
        assert set(manifest.stages["all"]) == {"model"}
        for seconds in manifest.stages["gcc"].values():
            assert seconds >= 0

    def test_cache_section_from_counters_and_notes(self, observing):
        manifest = _populated_manifest(observing)
        assert manifest.cache["trace"]["misses"] == 1
        assert manifest.cache["sim"]["hits"] == 2
        assert manifest.cache["sim"]["used"] == ["gcc-sim.pkl"]

    def test_environment_fingerprint_fields(self):
        env = environment_fingerprint()
        for key in ("python", "implementation", "platform", "machine", "numpy"):
            assert env[key]


class TestValidation:
    def test_missing_key_rejected(self, observing):
        data = _populated_manifest(observing).to_dict()
        del data["spans"]
        with pytest.raises(ManifestFormatError, match="missing keys"):
            validate_manifest(data)

    def test_wrong_schema_version_rejected(self, observing):
        data = _populated_manifest(observing).to_dict()
        data["schema_version"] = 99
        with pytest.raises(ManifestFormatError, match="schema_version"):
            validate_manifest(data)

    def test_malformed_span_rejected(self, observing):
        data = _populated_manifest(observing).to_dict()
        data["spans"].append({"name": "truncated"})
        with pytest.raises(ManifestFormatError, match="span"):
            validate_manifest(data)

    def test_negative_counter_rejected(self, observing):
        data = _populated_manifest(observing).to_dict()
        data["counters"]["bad"] = -1
        with pytest.raises(ManifestFormatError, match="bad"):
            validate_manifest(data)

    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ManifestFormatError, match="cannot read"):
            load_manifest(path)
        with pytest.raises(ManifestFormatError):
            load_manifest(tmp_path / "absent.json")

    def test_written_file_is_stable_json(self, observing, tmp_path):
        manifest = _populated_manifest(observing)
        path = manifest.write(tmp_path / "run.json")
        data = json.loads(path.read_text(encoding="utf-8"))
        validate_manifest(data)
        assert list(data) == sorted(data)
