"""Worker -> parent event transport through observation snapshots.

Covers the satellite requirement: merging recorder entries and notes
from workers that died mid-task (partial snapshots), including the
seq re-numbering and monotonic-clock rebasing the parent applies.
"""

from __future__ import annotations

import pytest

from repro import observe
from repro.observe.snapshot import SNAPSHOT_VERSION


@pytest.fixture()
def recording():
    was_enabled = observe.events_enabled()
    run_id = observe.enable_events()
    yield run_id
    observe.get_recorder().reset()
    if not was_enabled:
        observe.disable_events()


def _worker_payload(run_id, categories=("cache.miss", "program.done")):
    """Record ``categories`` as a worker would, and dump the snapshot."""
    observe.enable_events(run_id=run_id, worker="gcc")
    for category in categories:
        observe.emit_event(category, program="gcc")
    payload = observe.dump_snapshot()
    assert payload["events"] is not None
    return payload


def test_worker_events_are_resequenced_and_rebased(observing, recording):
    payload = _worker_payload(recording)
    worker_monos = [e["t_mono"] for e in payload["events"]["entries"]]

    # Back to the parent's recorder: already two parent events recorded.
    observe.enable_events(run_id=recording)
    observe.emit_event("run.start")
    observe.emit_event("worker.dispatch", program="gcc")

    observe.merge_snapshot(payload, under="pipeline/worker:gcc",
                           clock_offset=1000.0, attrs={"worker": "gcc"})

    entries = observe.get_recorder().entries()
    assert [e.category for e in entries] == [
        "run.start", "worker.dispatch", "cache.miss", "program.done",
    ]
    # Re-sequenced into the parent's strictly monotonic stream.
    assert [e.seq for e in entries] == [0, 1, 2, 3]
    # The merged events keep the worker label and the shared run id.
    assert [e.worker for e in entries] == ["", "", "gcc", "gcc"]
    assert all(e.run_id == recording for e in entries)
    # Monotonic clocks rebased exactly like span start_s.
    assert entries[2].t_mono == pytest.approx(worker_monos[0] + 1000.0)
    assert entries[3].t_mono == pytest.approx(worker_monos[1] + 1000.0)
    # The parent's own next event continues the sequence.
    observe.emit_event("worker.done", program="gcc")
    assert observe.get_recorder().entries()[-1].seq == 4


def test_partial_snapshot_missing_sections_merges_what_survived(
        observing, recording):
    """A worker that died mid-task can ship a payload with whole
    sections missing; the merge takes what is there."""
    observe.enable_events(run_id=recording)
    observe.merge_snapshot(
        {"version": SNAPSHOT_VERSION, "events": {
            "run_id": recording, "worker": "gcc",
            "entries": [{
                "v": 1, "seq": 0, "t_wall": 1.0, "t_mono": 2.0,
                "severity": "WARNING", "category": "fault.triggered",
                "run_id": recording, "worker": "", "data": {"site": "io"},
            }],
        }},
        clock_offset=5.0, attrs={"worker": "gcc"},
    )
    (entry,) = observe.get_recorder().entries()
    assert entry.category == "fault.triggered"
    assert entry.worker == "gcc"
    assert entry.t_mono == pytest.approx(7.0)

    # Events-only is equally fine the other way around: metrics with no
    # events section (an events-off worker) merges cleanly too.
    observe.merge_snapshot({"version": SNAPSHOT_VERSION},
                           attrs={"worker": "ctex"})
    assert len(observe.get_recorder().entries()) == 1


def test_malformed_entries_count_as_dropped_not_fatal(observing, recording):
    observe.enable_events(run_id=recording)
    observe.merge_snapshot(
        {"version": SNAPSHOT_VERSION, "events": {
            "worker": "gcc",
            "dropped": 3,  # the worker's own ring overflowed before death
            "entries": [
                "torn",                     # not a dict
                {"seq": 0},                 # missing timestamp keys
                {"v": 1, "seq": 1, "t_wall": 1.0, "t_mono": 1.0,
                 "severity": "LOUD", "category": "x",
                 "run_id": recording, "worker": "", "data": {}},  # bad severity
                {"v": 1, "seq": 2, "t_wall": 1.0, "t_mono": 1.0,
                 "severity": "INFO", "category": "cache.hit",
                 "run_id": recording, "worker": "", "data": {}},  # good
            ],
        }},
        attrs={"worker": "gcc"},
    )
    recorder = observe.get_recorder()
    assert [e.category for e in recorder.entries()] == ["cache.hit"]
    summary = recorder.summary()
    assert summary["dropped"] == 3 + 3  # shipped drops + malformed entries


def test_merge_with_events_disabled_is_a_noop(observing):
    observe.disable_events()
    merged = observe.merge_events_state(
        {"entries": [{"v": 1, "seq": 0, "t_wall": 1.0, "t_mono": 1.0,
                      "severity": "INFO", "category": "cache.hit",
                      "run_id": "abc", "worker": "", "data": {}}]},
    )
    assert merged == 0
    assert observe.get_recorder().entries() == []


def test_worker_notes_and_events_merge_together(observing, recording):
    """The same snapshot carries metrics notes and recorder entries; a
    parent merge lands both (the readonly-degradation audit trail)."""
    observe.enable_events(run_id=recording, worker="gcc")
    observe.note("cache.readonly", "gcc-entry.npz")
    observe.emit_event("cache.readonly", "WARNING", kind="trace",
                       program="gcc", entry="gcc-entry.npz")
    payload = observe.dump_snapshot()

    observe.reset()
    observe.enable_events(run_id=recording)
    observe.merge_snapshot(payload, under="pipeline/worker:gcc",
                           attrs={"worker": "gcc"})
    snapshot = observe.get_registry().snapshot()
    assert snapshot["notes"]["cache.readonly"] == ["gcc-entry.npz"]
    (entry,) = observe.get_recorder().entries()
    assert entry.category == "cache.readonly"
    assert entry.severity == "WARNING"
    assert entry.worker == "gcc"
