"""Unit tests for hierarchical timing spans."""

from __future__ import annotations

import pytest

from repro import observe
from repro.observe.spans import current_span_path, span

pytestmark = pytest.mark.observe


class TestNesting:
    def test_paths_record_the_hierarchy(self, observing):
        with span("outer"):
            with span("inner"):
                pass
        paths = [record.path for record in observing.spans]
        assert paths == ["outer/inner", "outer"]
        inner, outer = observing.spans
        assert inner.parent == "outer"
        assert outer.parent == ""

    def test_current_span_path_tracks_the_stack(self, observing):
        assert current_span_path() is None
        with span("a"):
            with span("b"):
                assert current_span_path() == "a/b"
            assert current_span_path() == "a"
        assert current_span_path() is None

    def test_durations_are_positive_and_nested_within_parent(self, observing):
        with span("outer"):
            with span("inner"):
                sum(range(1000))
        inner, outer = observing.spans
        assert 0 <= inner.duration_s <= outer.duration_s

    def test_attrs_carried_on_the_record(self, observing):
        with span("simulate", program="gcc"):
            pass
        assert observing.spans[0].attrs == {"program": "gcc"}

    def test_exception_still_records_with_error_flag(self, observing):
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        record = observing.spans[0]
        assert record.error is True
        assert current_span_path() is None


class TestDecorator:
    def test_decorated_function_records_per_call(self, observing):
        @span("work")
        def work(x):
            return x * 2

        assert work(2) == 4
        assert work(3) == 6
        assert [record.name for record in observing.spans] == ["work", "work"]

    def test_decorator_checks_enablement_at_call_time(self, observing):
        @span("toggled")
        def work():
            return 1

        observe.disable()
        work()
        assert observing.spans == []
        observe.enable()
        work()
        assert len(observing.spans) == 1


class TestDisabled:
    def test_disabled_span_records_nothing(self, observing):
        observe.disable()
        with span("quiet"):
            assert current_span_path() is None
        assert observing.spans == []

    def test_span_histogram_sample_recorded(self, observing):
        with span("stage"):
            pass
        summary = observing.histogram("span.stage.seconds").summary()
        assert summary["count"] == 1
