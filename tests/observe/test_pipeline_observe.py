"""Integration: the instrumented pipeline produces a valid run manifest."""

from __future__ import annotations

import pytest

from repro import observe
from repro.experiments.cli import main as cli_main
from repro.experiments.pipeline import ExperimentConfig, load_program_data
from repro.observe.manifest import RunManifest, load_manifest
from repro.observe.report import render_manifest_summary, render_metrics_report

pytestmark = pytest.mark.observe

PROGRAM = "qcd"  # heapless and quick at smoke scale


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("observe_cache")


class TestPipelineObservation:
    def test_cold_run_records_stages_and_cache_misses(self, observing, cache_dir):
        config = ExperimentConfig(
            programs=(PROGRAM,), scale="smoke", cache_dir=cache_dir
        )
        load_program_data(PROGRAM, config)
        manifest = RunManifest.from_registry(target="unit")
        stages = manifest.stages[PROGRAM]
        assert set(stages) >= {"compile", "trace", "simulate"}
        assert all(seconds >= 0 for seconds in stages.values())
        assert manifest.cache["trace"]["misses"] == 1
        assert manifest.cache["sim"]["misses"] == 1
        assert manifest.cache["trace"]["written"] and manifest.cache["sim"]["written"]
        assert manifest.counters["engine.runs"] == 1
        assert manifest.counters["trace.events"] == manifest.counters["engine.events"]
        assert manifest.counters["cpu.stores"] == manifest.counters["trace.writes"]

    def test_warm_run_records_cache_hits(self, observing, cache_dir):
        config = ExperimentConfig(
            programs=(PROGRAM,), scale="smoke", cache_dir=cache_dir
        )
        load_program_data(PROGRAM, config)  # warm (cached by previous test)
        manifest = RunManifest.from_registry()
        assert manifest.cache["sim"]["hits"] == 1
        assert manifest.cache["sim"]["used"]
        # a sim-cache hit skips tracing and simulating entirely
        assert "engine.runs" not in manifest.counters

    def test_metrics_report_renders(self, observing, cache_dir):
        config = ExperimentConfig(
            programs=(PROGRAM,), scale="smoke", cache_dir=cache_dir
        )
        load_program_data(PROGRAM, config)
        text = render_metrics_report()
        assert "Counters" in text and "cache.sim.hits" in text


class TestCliObservation:
    def test_manifest_flag_writes_valid_manifest(self, observing, cache_dir, tmp_path, capsys):
        manifest_path = tmp_path / "run.json"
        code = cli_main([
            "table1", "--scale", "smoke", "--programs", PROGRAM,
            "--cache-dir", str(cache_dir), "--quiet",
            "--manifest", str(manifest_path), "--metrics",
        ])
        assert code == 0
        manifest = load_manifest(manifest_path)  # validates on load
        assert manifest.target == "table1"
        assert manifest.config["programs"] == [PROGRAM]
        assert "model" in manifest.stages["all"]
        span_names = {span["name"] for span in manifest.spans}
        assert {"pipeline", "model", f"program:{PROGRAM}"} <= span_names
        summary = render_manifest_summary(manifest)
        assert "cache/sim" in summary
        err = capsys.readouterr().err
        assert "Observability report" in err
