"""Unit tests for the append-only trajectory store (repro.observe.history)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ManifestFormatError
from repro.observe.history import (
    HISTORY_SCHEMA_VERSION,
    HistoryRecord,
    append_record,
    load_history,
    render_trend,
)
from repro.observe.manifest import RunManifest

pytestmark = pytest.mark.observe


def make_manifest(simulate_s=1.0, eps_mean=2_000_000.0, hits=3, misses=1):
    return RunManifest(
        target="table4",
        stages={
            "gcc": {"simulate": simulate_s, "trace": 0.5},
            "bps": {"simulate": simulate_s / 2},
        },
        histograms={
            "engine.events_per_sec": {"count": 2, "mean": eps_mean},
        },
        cache={"sim": {"hits": hits, "misses": misses},
               "trace": {"hits": 0, "misses": 0}},
        environment={"python": "3.x", "machine": "test"},
    )


class TestRecordDistillation:
    def test_headline_numbers(self):
        record = HistoryRecord.from_manifest(make_manifest(simulate_s=2.0))
        headline = record.headline
        # stages summed across programs: simulate 2.0 + 1.0, trace 0.5
        assert headline["stage_seconds"]["simulate"] == pytest.approx(3.0)
        assert headline["total_stage_seconds"] == pytest.approx(3.5)
        assert headline["engine_events_per_sec"] == pytest.approx(2_000_000.0)
        assert headline["cache_hit_rate"]["sim"] == pytest.approx(0.75)
        assert headline["cache_hit_rate"]["trace"] is None

    def test_digest_identifies_content(self):
        a = HistoryRecord.from_manifest(make_manifest(), timestamp=0.0)
        same = HistoryRecord.from_manifest(make_manifest(), timestamp=0.0)
        other = HistoryRecord.from_manifest(
            make_manifest(simulate_s=9.0), timestamp=0.0
        )
        assert a.manifest_digest == same.manifest_digest
        assert a.manifest_digest != other.manifest_digest
        assert a.env_digest == other.env_digest  # same environment

    def test_headline_value_dotted_lookup(self):
        record = HistoryRecord.from_manifest(make_manifest())
        assert record.headline_value("total_stage_seconds") == pytest.approx(2.0)
        assert record.headline_value("stage_seconds.trace") == pytest.approx(0.5)
        assert record.headline_value("no.such.metric") is None


class TestAppendAndLoad:
    def test_roundtrip_preserves_order_and_content(self, tmp_path):
        path = tmp_path / "BENCH_history.json"
        first = append_record(path, make_manifest(simulate_s=1.0), timestamp=1.0)
        second = append_record(path, make_manifest(simulate_s=2.0), timestamp=2.0)
        records = load_history(path)
        assert [r.manifest_digest for r in records] == [
            first.manifest_digest, second.manifest_digest,
        ]
        assert records[0].target == "table4"
        assert records[0].schema_version == HISTORY_SCHEMA_VERSION

    def test_file_is_appended_not_rewritten(self, tmp_path):
        path = tmp_path / "h.json"
        append_record(path, make_manifest(), timestamp=1.0)
        before = path.read_text()
        append_record(path, make_manifest(simulate_s=3.0), timestamp=2.0)
        after = path.read_text()
        assert after.startswith(before)
        assert len(after.splitlines()) == 2

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_history(tmp_path / "nope.json") == []

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "h.json"
        append_record(path, make_manifest(), timestamp=1.0)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema_version": 1, "manifest_dig')  # crash mid-append
        assert len(load_history(path)) == 1

    def test_non_history_json_is_rejected(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text(json.dumps({"hello": "world"}) + "\n")
        with pytest.raises(ManifestFormatError):
            load_history(path)

    def test_schema_version_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "h.json"
        record = HistoryRecord.from_manifest(make_manifest()).to_dict()
        record["schema_version"] = 99
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ManifestFormatError, match="schema_version"):
            load_history(path)


class TestTrendRenderer:
    def test_empty_history(self):
        assert "history is empty" in render_trend([])

    def test_trend_shows_values_deltas_and_bars(self, tmp_path):
        path = tmp_path / "h.json"
        append_record(path, make_manifest(simulate_s=1.0), timestamp=1.0)
        append_record(path, make_manifest(simulate_s=2.0), timestamp=2.0)
        text = render_trend(load_history(path))
        assert "total_stage_seconds" in text
        assert "#" in text
        assert "+" in text  # the second run got slower: positive delta

    def test_trend_on_a_nested_metric(self, tmp_path):
        path = tmp_path / "h.json"
        append_record(path, make_manifest(), timestamp=1.0)
        text = render_trend(load_history(path), metric="stage_seconds.simulate")
        assert "stage_seconds.simulate" in text

    def test_env_change_is_annotated(self, tmp_path):
        # A history file carried across hosts must not let a host swap
        # masquerade as a code regression (satellite): the boundary is
        # marked and the delta across it flagged.
        path = tmp_path / "h.json"
        a = make_manifest(simulate_s=1.0)
        b = make_manifest(simulate_s=2.0)
        b.environment = {"python": "3.x", "machine": "other-box"}
        append_record(path, a, timestamp=1.0)
        append_record(path, b, timestamp=2.0)
        records = load_history(path)
        assert records[0].env_digest != records[1].env_digest
        text = render_trend(records)
        assert "environment changed" in text
        assert records[0].env_digest in text
        assert records[1].env_digest in text
        assert "%*" in text  # the cross-boundary delta is starred
        assert "reflects the host" in text

    def test_same_env_trend_has_no_annotation(self, tmp_path):
        path = tmp_path / "h.json"
        append_record(path, make_manifest(simulate_s=1.0), timestamp=1.0)
        append_record(path, make_manifest(simulate_s=2.0), timestamp=2.0)
        text = render_trend(load_history(path))
        assert "environment changed" not in text
        assert "*" not in text
