"""Unit tests for the metrics registry: counters, gauges, histograms."""

from __future__ import annotations

import json
import threading

import pytest

from repro import observe
from repro.observe.metrics import MetricsRegistry

pytestmark = pytest.mark.observe


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_same_name_same_counter(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.inc("c", 3)
        assert registry.counter("c").value == 5

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_thread_safe_increments(self):
        registry = MetricsRegistry()
        n_threads, per_thread = 8, 10_000

        def worker():
            for _ in range(per_thread):
                registry.inc("hot")

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("hot").value == n_threads * per_thread


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 10)
        registry.set_gauge("g", 7)
        assert registry.gauge("g").value == 7


class TestHistogram:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        for value in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
            registry.observe_value("h", value)
        summary = registry.histogram("h").summary()
        assert summary["count"] == 10
        assert summary["min"] == 1 and summary["max"] == 10
        assert summary["mean"] == pytest.approx(5.5)
        assert summary["total"] == pytest.approx(55)
        assert 5 <= summary["p50"] <= 6
        assert 9 <= summary["p90"] <= 10

    def test_empty_summary_and_percentile(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        assert histogram.summary() == {"count": 0}
        with pytest.raises(ValueError):
            histogram.percentile(50)


class TestModuleHelpers:
    def test_disabled_helpers_record_nothing(self, observing):
        observe.disable()
        observe.inc("silent")
        observe.set_gauge("silent_g", 1)
        observe.observe_value("silent_h", 1)
        observe.note("silent_n", "x")
        snapshot = observing.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}
        assert snapshot["notes"] == {}

    def test_enabled_helpers_hit_the_shared_registry(self, observing):
        observe.inc("events", 3)
        observe.set_gauge("depth", 2)
        observe.observe_value("latency", 0.5)
        observe.note("cache", "a.npz")
        snapshot = observing.snapshot()
        assert snapshot["counters"]["events"] == 3
        assert snapshot["gauges"]["depth"] == 2
        assert snapshot["histograms"]["latency"]["count"] == 1
        assert snapshot["notes"]["cache"] == ["a.npz"]

    def test_snapshot_is_json_serializable(self, observing):
        observe.inc("events")
        observe.observe_value("latency", 1.25)
        with observe.span("stage"):
            pass
        json.dumps(observing.snapshot())

    def test_reset_clears_everything(self, observing):
        observe.inc("events")
        with observe.span("stage"):
            pass
        observe.reset()
        snapshot = observing.snapshot()
        assert snapshot["counters"] == {} and snapshot["spans"] == []
