"""Tests for Chrome trace-event export (repro.observe.traceview)."""

from __future__ import annotations

import json

import pytest

from repro import observe
from repro.observe.spans import SpanRecord
from repro.observe.traceview import spans_to_trace_events, write_chrome_trace

pytestmark = pytest.mark.observe


def make_spans():
    """A two-level span tree as flat records (outer contains inner)."""
    return [
        SpanRecord(
            name="simulate", path="pipeline/program:gcc/simulate",
            parent="pipeline/program:gcc", start_s=100.2, duration_s=0.5,
            attrs={"program": "gcc"},
        ),
        SpanRecord(
            name="program:gcc", path="pipeline/program:gcc",
            parent="pipeline", start_s=100.1, duration_s=0.8,
        ),
        SpanRecord(
            name="pipeline", path="pipeline", parent="",
            start_s=100.0, duration_s=1.0, error=True,
        ),
    ]


class TestSpansToTraceEvents:
    def test_document_shape(self):
        doc = spans_to_trace_events(make_spans())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phases = [event["ph"] for event in doc["traceEvents"]]
        assert phases.count("X") == 3
        assert phases.count("M") == 1  # process_name metadata

    def test_timestamps_rebased_to_earliest_span_in_microseconds(self):
        events = {
            e["name"]: e for e in spans_to_trace_events(make_spans())["traceEvents"]
            if e["ph"] == "X"
        }
        assert events["pipeline"]["ts"] == pytest.approx(0.0)
        assert events["program:gcc"]["ts"] == pytest.approx(0.1e6)
        assert events["simulate"]["ts"] == pytest.approx(0.2e6)
        assert events["simulate"]["dur"] == pytest.approx(0.5e6)

    def test_nesting_is_containment_on_one_track(self):
        events = [
            e for e in spans_to_trace_events(make_spans())["traceEvents"]
            if e["ph"] == "X"
        ]
        tids = {event["tid"] for event in events}
        assert len(tids) == 1
        by_name = {event["name"]: event for event in events}
        outer, inner = by_name["pipeline"], by_name["simulate"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_attrs_error_and_category_carried_in_args(self):
        events = {
            e["name"]: e for e in spans_to_trace_events(make_spans())["traceEvents"]
            if e["ph"] == "X"
        }
        assert events["simulate"]["args"]["program"] == "gcc"
        assert events["simulate"]["cat"] == "pipeline"
        assert events["pipeline"]["args"]["error"] is True
        assert "error" not in events["simulate"]["args"]

    def test_accepts_manifest_dicts_too(self):
        dicts = [span.to_dict() for span in make_spans()]
        doc = spans_to_trace_events(dicts)
        assert sum(1 for e in doc["traceEvents"] if e["ph"] == "X") == 3


class TestWriteChromeTrace:
    def test_roundtrip_through_json_file(self, tmp_path):
        path = write_chrome_trace(tmp_path / "run.trace.json", make_spans(),
                                  process_name="unit")
        parsed = json.loads(path.read_text(encoding="utf-8"))
        assert parsed["displayTimeUnit"] == "ms"
        meta = [e for e in parsed["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "unit"
        for event in parsed["traceEvents"]:
            if event["ph"] == "X":
                assert event["ts"] >= 0 and event["dur"] >= 0

    def test_defaults_to_registry_spans(self, observing, tmp_path):
        with observe.span("outer"):
            with observe.span("inner"):
                pass
        path = write_chrome_trace(tmp_path / "reg.trace.json")
        parsed = json.loads(path.read_text(encoding="utf-8"))
        names = {e["name"] for e in parsed["traceEvents"] if e["ph"] == "X"}
        assert {"outer", "inner"} <= names

    def test_empty_span_list_still_valid(self, tmp_path):
        path = write_chrome_trace(tmp_path / "empty.json", [])
        parsed = json.loads(path.read_text(encoding="utf-8"))
        assert [e["ph"] for e in parsed["traceEvents"]] == ["M"]
