"""Regression tests: observe.reset() clears thread-local span state.

A span abandoned without ``__exit__`` (crashed harness, garbage-collected
generator) leaves its name on the thread-local stack; before the fix,
every span opened later in that process inherited the stale path prefix,
so back-to-back pipeline runs in one process produced corrupted span
trees.  ``observe.reset()`` now drops all open-span stacks along with
the registry.
"""

from __future__ import annotations

import threading

import pytest

from repro import observe
from repro.observe.spans import span

pytestmark = pytest.mark.observe


class TestResetClearsSpanState:
    def test_abandoned_span_pollutes_until_reset(self, observing):
        stale = span("stale-run")
        stale.__enter__()  # never exited: simulates a crashed first run
        assert observe.current_span_path() == "stale-run"

        observe.reset()
        assert observe.current_span_path() is None

        with span("fresh"):
            assert observe.current_span_path() == "fresh"
        (record,) = observe.get_registry().snapshot()["spans"]
        assert record["path"] == "fresh"
        assert record["parent"] == ""

    def test_back_to_back_runs_do_not_inherit_paths(self, observing):
        # First "pipeline run" dies inside an open span.
        outer = span("pipeline")
        outer.__enter__()
        with span("simulate"):
            pass
        # Process reuses the interpreter for a second run.
        observe.reset()
        with span("pipeline"):
            with span("simulate"):
                pass
        paths = [r["path"] for r in observe.get_registry().snapshot()["spans"]]
        assert paths == ["pipeline/simulate", "pipeline"]

    def test_span_open_across_reset_exits_safely(self, observing):
        crossing = span("crossing")
        crossing.__enter__()
        observe.reset()
        crossing.__exit__(None, None, None)  # must not blow up or mis-pop
        assert observe.current_span_path() is None
        # The record is still written (duration was measured before reset).
        records = observe.get_registry().snapshot()["spans"]
        assert [r["name"] for r in records] == ["crossing"]

    def test_other_threads_are_cleared_too(self, observing):
        entered = threading.Event()
        release = threading.Event()

        def worker():
            span("worker-stale").__enter__()
            entered.set()
            release.wait(timeout=5)

        thread = threading.Thread(target=worker)
        thread.start()
        entered.wait(timeout=5)
        observe.reset()
        release.set()
        thread.join(timeout=5)
        # The main thread's view of a fresh stack:
        assert observe.current_span_path() is None
        with span("clean"):
            assert observe.current_span_path() == "clean"
