"""Shared fixtures for the observability tests.

Observation state is process-global, so every test in this package runs
against a clean, *enabled* registry and restores the previous enablement
afterwards — the rest of the suite keeps its disabled default.
"""

from __future__ import annotations

import pytest

from repro import observe


@pytest.fixture
def observing():
    """Enable observation on a fresh registry; restore state afterwards."""
    was_enabled = observe.is_enabled()
    observe.reset()
    observe.enable()
    yield observe.get_registry()
    if not was_enabled:
        observe.disable()
    observe.reset()
