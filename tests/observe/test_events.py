"""Flight recorder unit tests: ring, sink, schema, transport, reset."""

from __future__ import annotations

import json

import pytest

from repro import observe
from repro.observe import events as events_module


@pytest.fixture()
def recording():
    """Event recording on with a fresh ring; restore state afterwards."""
    was_enabled = observe.events_enabled()
    run_id = observe.enable_events()
    yield run_id
    observe.get_recorder().reset()
    if not was_enabled:
        observe.disable_events()


def test_emit_while_disabled_records_nothing():
    observe.disable_events()
    recorder = observe.get_recorder()
    before = len(recorder.entries())
    observe.emit_event("cache.hit", kind="trace")
    assert len(recorder.entries()) == before
    assert observe.events_summary() is None
    assert observe.dump_events_state() is None


def test_enable_generates_run_id_and_records(recording):
    assert len(recording) == 12
    assert observe.current_run_id() == recording
    observe.emit_event("program.start", program="gcc", scale=3)
    observe.emit_event("fault.triggered", "WARNING", site="cache.read")
    entries = observe.get_recorder().entries()
    assert [e.category for e in entries] == ["program.start", "fault.triggered"]
    assert [e.seq for e in entries] == [0, 1]
    assert entries[0].run_id == recording
    assert entries[0].data == {"program": "gcc", "scale": 3}
    assert entries[1].severity == "WARNING"


def test_summary_counts_by_severity_and_category(recording):
    observe.emit_event("cache.hit")
    observe.emit_event("cache.hit")
    observe.emit_event("cache.miss")
    observe.emit_event("pool.broken", "WARNING")
    summary = observe.events_summary()
    assert summary["run_id"] == recording
    assert summary["emitted"] == 4
    assert summary["dropped"] == 0
    assert summary["recorded"] == 4
    assert summary["by_severity"] == {"INFO": 3, "WARNING": 1}
    assert summary["by_category"] == {
        "cache.hit": 2, "cache.miss": 1, "pool.broken": 1,
    }


def test_ring_is_bounded_and_counts_drops():
    run_id = observe.enable_events(capacity=4)
    try:
        for index in range(10):
            observe.emit_event("tick", n=index)
        recorder = observe.get_recorder()
        entries = recorder.entries()
        assert len(entries) == 4
        assert [e.data["n"] for e in entries] == [6, 7, 8, 9]
        assert [e.seq for e in entries] == [6, 7, 8, 9]
        summary = recorder.summary()
        assert summary["emitted"] == 10
        assert summary["dropped"] == 6
        assert summary["run_id"] == run_id
    finally:
        # Restore the default-capacity recorder for the rest of the suite.
        observe.disable_events()
        observe.enable_events(capacity=events_module.DEFAULT_RECORDER_CAPACITY)
        observe.disable_events()


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        events_module.FlightRecorder(capacity=0)


def test_bad_severity_rejected_at_emit(recording):
    with pytest.raises(ValueError):
        observe.get_recorder().record("cache.hit", severity="LOUD")


def test_sink_writes_validating_jsonl(tmp_path):
    log = tmp_path / "run.events.jsonl"
    run_id = observe.enable_events(sink_path=log)
    try:
        observe.emit_event("run.start", target="table4")
        observe.emit_event("cache.miss", kind="sim", program="gcc")
    finally:
        observe.disable_events()
    events = observe.load_event_log(log, allow_multiple_runs=False)
    assert [e["category"] for e in events] == ["run.start", "cache.miss"]
    assert all(e["run_id"] == run_id for e in events)
    assert events[0]["seq"] == 0 and events[1]["seq"] == 1


def test_payload_values_coerced_to_json_scalars(tmp_path):
    log = tmp_path / "coerce.jsonl"
    observe.enable_events(sink_path=log)
    try:
        observe.emit_event("cache.hit", path=tmp_path, count=2, ok=True)
    finally:
        observe.disable_events()
    (event,) = observe.load_event_log(log)
    assert event["data"] == {"path": str(tmp_path), "count": 2, "ok": True}


def test_torn_final_line_is_skipped(tmp_path):
    log = tmp_path / "torn.jsonl"
    observe.enable_events(sink_path=log)
    try:
        observe.emit_event("run.start")
        observe.emit_event("cache.hit")
    finally:
        observe.disable_events()
    with open(log, "a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "seq": 2, "t_wall"')  # crashed writer
    events = observe.load_event_log(log)
    assert len(events) == 2


def test_torn_middle_line_is_an_error(tmp_path):
    log = tmp_path / "bad.jsonl"
    observe.enable_events(sink_path=log)
    try:
        observe.emit_event("run.start")
    finally:
        observe.disable_events()
    good = log.read_text(encoding="utf-8")
    log.write_text("not json\n" + good, encoding="utf-8")
    with pytest.raises(ValueError, match="not valid JSON"):
        observe.load_event_log(log)


def test_validate_event_dict_rejects_bad_shapes(recording):
    observe.emit_event("cache.hit")
    good = observe.get_recorder().entries()[0].to_dict()
    observe.validate_event_dict(good)

    for mutation, match in [
        ({"v": 99}, "unsupported schema version"),
        ({"seq": -1}, "'seq'"),
        ({"seq": True}, "'seq'"),
        ({"t_wall": "noon"}, "'t_wall'"),
        ({"severity": "LOUD"}, "severity"),
        ({"category": ""}, "'category'"),
        ({"run_id": ""}, "'run_id'"),
        ({"worker": None}, "'worker'"),
        ({"data": []}, "'data'"),
    ]:
        bad = dict(good, **mutation)
        with pytest.raises(ValueError, match=match):
            observe.validate_event_dict(bad)
    with pytest.raises(ValueError, match="missing keys"):
        observe.validate_event_dict({"v": 1})
    with pytest.raises(ValueError, match="JSON object"):
        observe.validate_event_dict([good])


def test_log_lines_must_be_seq_monotonic_and_single_run(recording):
    observe.emit_event("a")
    observe.emit_event("b")
    lines = [
        json.dumps(entry.to_dict())
        for entry in observe.get_recorder().entries()
    ]
    observe.validate_event_log_lines(lines)
    with pytest.raises(ValueError, match="strictly increasing"):
        observe.validate_event_log_lines([lines[1], lines[0]])
    other = json.loads(lines[1])
    other["run_id"] = "deadbeef0000"
    with pytest.raises(ValueError, match="distinct run_ids"):
        observe.validate_event_log_lines([lines[0], json.dumps(other)])
    observe.validate_event_log_lines(
        [lines[0], json.dumps(other)], allow_multiple_runs=True
    )


def test_write_blackbox_dumps_the_ring(tmp_path, recording):
    for index in range(3):
        observe.emit_event("tick", n=index)
    path = tmp_path / "run.blackbox.jsonl"
    count = observe.write_blackbox(path)
    assert count == 3
    events = observe.load_event_log(path, allow_multiple_runs=False)
    assert [e["data"]["n"] for e in events] == [0, 1, 2]


def test_observe_reset_clears_ring_but_keeps_identity(recording):
    observe.emit_event("cache.hit")
    observe.reset()  # the registered reset hook clears the ring
    recorder = observe.get_recorder()
    assert recorder.entries() == []
    assert recorder.run_id == recording
    assert observe.events_enabled()


def test_reconfigure_rotates_run_id_and_clears(recording):
    observe.emit_event("cache.hit")
    new_id = observe.enable_events()
    assert new_id != recording
    assert observe.get_recorder().entries() == []


def test_sink_survives_oserror_by_detaching(tmp_path, recording):
    log = tmp_path / "detach.jsonl"
    observe.enable_events(run_id=recording, sink_path=log)
    observe.emit_event("a")
    recorder = observe.get_recorder()

    class _FullDisk:
        def write(self, _line):
            raise OSError("no space left on device")

        def close(self):
            pass

    recorder._sink = _FullDisk()  # the disk goes away mid-run
    observe.emit_event("b")  # must not raise
    assert recorder.sink_path is None
    assert recorder._sink is None
    assert [e.category for e in recorder.entries()] == ["a", "b"]


def test_torn_final_line_warns_through_callback(tmp_path):
    # Regression: the torn tail is tolerated *with a warning*, so the
    # CLI and the lint tool can tell the user the writer was killed
    # mid-append rather than silently shortening the log.
    log = tmp_path / "torn.jsonl"
    observe.enable_events(sink_path=log)
    try:
        observe.emit_event("run.start")
    finally:
        observe.disable_events()
    with open(log, "a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "seq": 1, "t_wall"')
    warnings = []
    events = observe.load_event_log(log, on_warning=warnings.append)
    assert len(events) == 1
    assert len(warnings) == 1
    assert "torn final line" in warnings[0]


def test_lint_tool_warns_not_errors_on_torn_tail(tmp_path, capsys):
    import importlib.util
    from pathlib import Path

    spec = importlib.util.spec_from_file_location(
        "lint_event_log",
        Path(__file__).resolve().parents[2] / "tools" / "lint_event_log.py",
    )
    tool = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(tool)

    log = tmp_path / "torn.jsonl"
    observe.enable_events(sink_path=log)
    try:
        observe.emit_event("run.start")
        observe.emit_event("cache.hit")
    finally:
        observe.disable_events()
    with open(log, "a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "seq": 2')
    assert tool.main([str(log)]) == 0
    captured = capsys.readouterr()
    assert "warning:" in captured.err
    assert "torn final line" in captured.err
    assert "OK — 2 event(s)" in captured.out


def test_events_subcommand_warns_on_torn_tail(tmp_path, capsys):
    from repro.experiments.cli import main as cli_main

    log = tmp_path / "torn.jsonl"
    observe.enable_events(sink_path=log)
    try:
        observe.emit_event("run.start")
    finally:
        observe.disable_events()
    with open(log, "a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "seq": 1, "t_w')
    assert cli_main(["events", str(log)]) == 0
    captured = capsys.readouterr()
    assert "torn final line" in captured.err
    assert "1 of 1 event(s)" in captured.out
