"""Tests for the 1-in-N sampling profiler (repro.observe.profile)."""

from __future__ import annotations

import pytest

from repro import observe
from repro.machine import isa
from repro.observe import profile as observe_profile
from repro.sessions.types import ONE_HEAP, SessionDef
from repro.simulate import simulate_sessions
from repro.trace.events import EventKind, EventTrace
from repro.trace.objects import ObjectRegistry

from tests.conftest import run_minic

pytestmark = pytest.mark.observe


@pytest.fixture
def profiling():
    """Enable profiling with a tiny stride; restore and clear afterwards."""
    observe_profile.enable_profiling(stride=10)
    observe_profile.reset_profile()
    yield observe_profile.get_profiler()
    observe_profile.disable_profiling()
    observe_profile.reset_profile()


LOOP_SOURCE = """
int main() {
    int total; int i;
    total = 0;
    for (i = 0; i < 2000; i = i + 1) { total = total + i; }
    return total;
}
"""


class TestStrides:
    def test_disabled_by_default(self):
        assert not observe_profile.is_profiling()
        assert observe_profile.cpu_sample_stride() == 0
        assert observe_profile.engine_sample_stride() == 0

    def test_enable_sets_both_strides(self, profiling):
        assert observe_profile.is_profiling()
        assert observe_profile.cpu_sample_stride() == 10
        assert observe_profile.engine_sample_stride() == 10

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError):
            observe_profile.enable_profiling(stride=0)

    def test_env_stride_parsing(self):
        parse = observe_profile._parse_env_stride
        assert parse("1") == observe_profile.DEFAULT_SAMPLE_STRIDE
        assert parse("250") == 250
        assert parse("0") == 0
        assert parse("off") == 0


class TestCpuSampling:
    def test_disabled_run_records_no_samples(self):
        observe_profile.reset_profile()
        run_minic(LOOP_SOURCE)
        assert observe_profile.get_profiler().cpu_opcodes == {}

    def test_sampled_opcode_counts_approximate_the_mix(self, profiling):
        assert run_minic(LOOP_SOURCE) == sum(range(2000))
        samples = profiling.cpu_opcodes
        assert samples, "profiling run recorded no opcode samples"
        # The loop executes >10k instructions; 1-in-10 sampling should
        # land roughly instructions/10 samples in total.
        total = sum(samples.values())
        assert total > 500
        # The loop body is adds/compares/branches; ADD must be sampled.
        assert samples.get(isa.ADD, 0) > 0

    def test_top_opcodes_report_names_and_estimates(self, profiling):
        run_minic(LOOP_SOURCE)
        top = profiling.top_opcodes(5)
        assert top and all(estimate == count * 10 for _, count, estimate in top)
        names = [name for name, _, _ in top]
        assert all(isinstance(name, str) for name in names)

    def test_samples_mirrored_into_metrics_when_observing(
        self, profiling, observing
    ):
        run_minic(LOOP_SOURCE)
        counters = observing.snapshot()["counters"]
        opcode_counters = {
            name for name in counters if name.startswith("profile.cpu.opcode.")
        }
        assert opcode_counters
        assert observing.snapshot()["gauges"]["profile.cpu.stride"] == 10


def _engine_inputs(n_writes=600):
    """A tiny install/write/remove trace over one monitored object."""
    registry = ObjectRegistry()
    obj = registry.heap("f", ("main", "f"), 32)
    trace = EventTrace("profile-test")
    trace.append_install(obj.id, 1 << 16, (1 << 16) + 32)
    for i in range(n_writes):
        address = (1 << 16) + 4 * (i % 8)
        trace.append_write(address, address + 4)
    trace.append_remove(obj.id, 1 << 16, (1 << 16) + 32)
    sessions = [SessionDef(0, ONE_HEAP, "one", (obj.id,))]
    return trace, registry, sessions


class TestEngineSampling:
    def test_engine_event_mix_sampled(self, profiling):
        trace, registry, sessions = _engine_inputs()
        simulate_sessions(trace, registry, sessions, (4096,))
        samples = profiling.engine_events
        assert samples
        assert int(EventKind.WRITE) in samples
        total = sum(samples.values())
        # len(trace) events sampled 1-in-10 via an extended slice.
        assert total == len(trace.kinds[::10])

    def test_disabled_engine_records_nothing(self):
        observe_profile.reset_profile()
        trace, registry, sessions = _engine_inputs()
        simulate_sessions(trace, registry, sessions, (4096,))
        assert observe_profile.get_profiler().engine_events == {}


class TestReportAndReset:
    def test_render_without_samples(self):
        observe_profile.reset_profile()
        assert "no samples recorded" in observe_profile.render_profile_report()

    def test_render_with_samples(self, profiling):
        run_minic(LOOP_SOURCE)
        report = observe_profile.render_profile_report(top_n=3)
        assert "CPU opcodes" in report
        assert "1-in-10 sampled" in report
        assert "%" in report

    def test_observe_reset_clears_samples(self, profiling):
        run_minic(LOOP_SOURCE)
        assert profiling.cpu_opcodes
        observe.reset()
        assert profiling.cpu_opcodes == {}
        assert observe_profile.is_profiling()  # enablement untouched
