"""Unit tests for structural manifest diffing (repro.observe.diff)."""

from __future__ import annotations

import pytest

from repro.observe.diff import (
    DiffThresholds,
    STATUS_DRIFT,
    STATUS_IMPROVEMENT,
    STATUS_OK,
    STATUS_REGRESSION,
    STATUS_REMOVED,
    STATUS_WARNING,
    diff_manifests,
    render_diff_report,
)
from repro.observe.manifest import RunManifest

pytestmark = pytest.mark.observe


def make_manifest(
    stages=None, eps_mean=None, cache=None, counters=None, environment=None,
    target="test",
):
    """A minimal manifest with just the families the differ reads."""
    histograms = {}
    if eps_mean is not None:
        histograms["engine.events_per_sec"] = {
            "count": 1, "min": eps_mean, "max": eps_mean, "mean": eps_mean,
            "p50": eps_mean, "p90": eps_mean, "p95": eps_mean,
            "p99": eps_mean, "total": eps_mean,
        }
    return RunManifest(
        target=target,
        stages=stages or {},
        histograms=histograms,
        cache=cache or {},
        counters=counters or {},
        environment=environment or {"python": "3.x"},
    )


class TestStageTimings:
    def test_identical_manifests_are_ok(self):
        a = make_manifest(stages={"gcc": {"simulate": 1.0, "trace": 0.5}})
        b = make_manifest(stages={"gcc": {"simulate": 1.0, "trace": 0.5}})
        diff = diff_manifests(a, b)
        assert diff.verdict == STATUS_OK
        assert not diff.regressions
        assert all(e.status == STATUS_OK for e in diff.entries
                   if e.family == "stage")

    def test_degraded_stage_regresses(self):
        a = make_manifest(stages={"gcc": {"simulate": 1.0}})
        b = make_manifest(stages={"gcc": {"simulate": 1.5}})
        diff = diff_manifests(a, b)
        assert diff.verdict == STATUS_REGRESSION
        (entry,) = diff.regressions
        assert entry.metric == "stages/gcc/simulate"
        assert entry.delta == pytest.approx(0.5)
        assert entry.rel_delta == pytest.approx(0.5)

    def test_improved_stage_is_improvement(self):
        a = make_manifest(stages={"gcc": {"simulate": 1.5}})
        b = make_manifest(stages={"gcc": {"simulate": 1.0}})
        diff = diff_manifests(a, b)
        assert diff.verdict == STATUS_OK
        assert [e.metric for e in diff.improvements] == ["stages/gcc/simulate"]

    def test_absolute_floor_suppresses_tiny_regressions(self):
        # +100% relative but only +2ms absolute: under the 5ms floor.
        a = make_manifest(stages={"gcc": {"simulate": 0.002}})
        b = make_manifest(stages={"gcc": {"simulate": 0.004}})
        assert diff_manifests(a, b).verdict == STATUS_OK

    def test_relative_threshold_is_configurable(self):
        a = make_manifest(stages={"gcc": {"simulate": 1.0}})
        b = make_manifest(stages={"gcc": {"simulate": 1.1}})
        assert diff_manifests(a, b).verdict == STATUS_OK  # 10% < default 25%
        strict = DiffThresholds(stage_rel=0.05)
        assert diff_manifests(a, b, strict).verdict == STATUS_REGRESSION

    def test_vanished_stage_is_removed_not_regression(self):
        a = make_manifest(stages={"gcc": {"simulate": 1.0}})
        b = make_manifest(stages={})
        diff = diff_manifests(a, b)
        assert diff.verdict == STATUS_OK
        (entry,) = [e for e in diff.entries if e.family == "stage"]
        assert entry.status == STATUS_REMOVED


class TestEngineThroughput:
    def test_throughput_drop_regresses(self):
        a = make_manifest(eps_mean=1_000_000.0)
        b = make_manifest(eps_mean=500_000.0)
        diff = diff_manifests(a, b)
        assert diff.verdict == STATUS_REGRESSION
        (entry,) = diff.regressions
        assert entry.family == "engine"

    def test_throughput_rise_is_improvement(self):
        a = make_manifest(eps_mean=500_000.0)
        b = make_manifest(eps_mean=1_000_000.0)
        diff = diff_manifests(a, b)
        assert diff.verdict == STATUS_OK
        assert diff.improvements[0].family == "engine"

    def test_absent_histogram_is_not_a_regression(self):
        a = make_manifest(eps_mean=1_000_000.0)
        b = make_manifest()
        assert diff_manifests(a, b).verdict == STATUS_OK


class TestCacheHitRates:
    def test_hit_rate_drop_regresses(self):
        a = make_manifest(cache={"sim": {"hits": 9, "misses": 1}})
        b = make_manifest(cache={"sim": {"hits": 1, "misses": 9}})
        diff = diff_manifests(a, b)
        assert diff.verdict == STATUS_REGRESSION
        (entry,) = diff.regressions
        assert entry.metric == "cache.sim.hit_rate"

    def test_small_drop_within_threshold_is_ok(self):
        a = make_manifest(cache={"sim": {"hits": 95, "misses": 5}})
        b = make_manifest(cache={"sim": {"hits": 90, "misses": 10}})
        assert diff_manifests(a, b).verdict == STATUS_OK

    def test_untouched_cache_is_skipped(self):
        a = make_manifest(cache={"sim": {"hits": 0, "misses": 0}})
        b = make_manifest(cache={"sim": {"hits": 0, "misses": 0}})
        diff = diff_manifests(a, b)
        assert not [e for e in diff.entries if e.family == "cache"]


class TestDriftAndEnvironment:
    def test_large_counter_swing_is_drift_not_regression(self):
        a = make_manifest(counters={"engine.events": 1000})
        b = make_manifest(counters={"engine.events": 100})
        diff = diff_manifests(a, b)
        assert diff.verdict == STATUS_OK
        assert [e.metric for e in diff.drift] == ["engine.events"]

    def test_environment_change_is_drift(self):
        a = make_manifest(environment={"python": "3.9.0"})
        b = make_manifest(environment={"python": "3.12.0"})
        diff = diff_manifests(a, b)
        drift = [e for e in diff.drift if e.family == "environment"]
        assert drift and "3.9.0" in drift[0].note


class TestCrossEnvironment:
    """A diff across two hosts must warn, not convict (satellite)."""

    def test_regression_downgraded_to_warning_across_envs(self):
        a = make_manifest(stages={"gcc": {"simulate": 1.0}},
                          environment={"hostname": "box-a"})
        b = make_manifest(stages={"gcc": {"simulate": 2.0}},
                          environment={"hostname": "box-b"})
        diff = diff_manifests(a, b)
        assert diff.cross_environment
        assert not diff.regressions
        (entry,) = diff.warnings
        assert entry.metric == "stages/gcc/simulate"
        assert "cross-environment" in entry.note
        assert diff.verdict == STATUS_WARNING

    def test_same_env_regression_still_gates(self):
        env = {"hostname": "box-a"}
        a = make_manifest(stages={"gcc": {"simulate": 1.0}}, environment=env)
        b = make_manifest(stages={"gcc": {"simulate": 2.0}}, environment=env)
        diff = diff_manifests(a, b)
        assert not diff.cross_environment
        assert diff.verdict == STATUS_REGRESSION

    def test_improvements_survive_cross_env_untouched(self):
        a = make_manifest(eps_mean=1000.0, environment={"hostname": "box-a"})
        b = make_manifest(eps_mean=5000.0, environment={"hostname": "box-b"})
        diff = diff_manifests(a, b)
        assert diff.improvements and not diff.warnings

    def test_report_and_verdict_document_note_the_env_change(self):
        a = make_manifest(stages={"gcc": {"simulate": 1.0}},
                          environment={"hostname": "box-a"})
        b = make_manifest(stages={"gcc": {"simulate": 2.0}},
                          environment={"hostname": "box-b"})
        diff = diff_manifests(a, b)
        report = render_diff_report(diff)
        assert "different environments" in report
        assert "!?" in report
        doc = diff.to_dict()
        assert doc["cross_environment"] is True
        assert doc["n_warnings"] == 1 and doc["n_regressions"] == 0


class TestRenderAndVerdict:
    def test_report_names_the_regressed_stage(self):
        a = make_manifest(stages={"gcc": {"simulate": 1.0}})
        b = make_manifest(stages={"gcc": {"simulate": 2.0}})
        report = render_diff_report(diff_manifests(a, b))
        assert "REGRESSION" in report
        assert "stages/gcc/simulate" in report
        assert "!!" in report

    def test_machine_verdict_roundtrips(self):
        a = make_manifest(stages={"gcc": {"simulate": 1.0}})
        b = make_manifest(stages={"gcc": {"simulate": 2.0}})
        doc = diff_manifests(a, b).to_dict()
        assert doc["verdict"] == STATUS_REGRESSION
        assert doc["n_regressions"] == 1
        assert doc["thresholds"]["stage_rel"] == DiffThresholds.stage_rel
        statuses = {entry["status"] for entry in doc["entries"]}
        assert STATUS_REGRESSION in statuses

    def test_drift_lines_are_capped_in_text_report(self):
        a = make_manifest(counters={f"c{i}": 1000 for i in range(30)})
        b = make_manifest(counters={f"c{i}": 1 for i in range(30)})
        report = render_diff_report(diff_manifests(a, b))
        assert "more drifted counter(s)" in report
        assert report.count("large swing") <= 12
