"""Environment-fingerprint stability and manifest schema-version guards."""

from __future__ import annotations

import json

import pytest

from repro.errors import ManifestFormatError
from repro.observe.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    environment_fingerprint,
    load_manifest,
)

pytestmark = pytest.mark.observe

#: The documented field set (docs/OBSERVABILITY.md, `environment` row).
DOCUMENTED_FIELDS = {
    "python", "implementation", "platform", "machine", "numpy", "executable",
}


class TestEnvironmentFingerprint:
    def test_same_process_gives_identical_fingerprint(self):
        assert environment_fingerprint() == environment_fingerprint()

    def test_field_set_matches_the_docs(self):
        assert set(environment_fingerprint()) == DOCUMENTED_FIELDS

    def test_all_fields_are_non_empty_strings(self):
        for key, value in environment_fingerprint().items():
            assert isinstance(value, str) and value, key

    def test_manifest_embeds_the_fingerprint_by_default(self):
        manifest = RunManifest(target="t")
        assert manifest.environment == environment_fingerprint()

    def test_identical_manifests_share_a_digest(self):
        env = environment_fingerprint()
        a = RunManifest(target="t", environment=env)
        b = RunManifest(target="t", environment=env)
        assert a.digest() == b.digest()
        b.target = "other"
        assert a.digest() != b.digest()


class TestSchemaVersionRejection:
    def _write_manifest(self, tmp_path, mutate):
        path = tmp_path / "m.json"
        RunManifest(target="t").write(path)
        data = json.loads(path.read_text(encoding="utf-8"))
        mutate(data)
        path.write_text(json.dumps(data), encoding="utf-8")
        return path

    def test_load_manifest_rejects_future_schema(self, tmp_path):
        path = self._write_manifest(
            tmp_path,
            lambda d: d.update(schema_version=MANIFEST_SCHEMA_VERSION + 1),
        )
        with pytest.raises(ManifestFormatError, match="schema_version"):
            load_manifest(path)

    def test_load_manifest_rejects_non_int_schema(self, tmp_path):
        path = self._write_manifest(
            tmp_path, lambda d: d.update(schema_version="1")
        )
        with pytest.raises(ManifestFormatError, match="schema_version"):
            load_manifest(path)

    def test_load_manifest_rejects_missing_keys(self, tmp_path):
        path = self._write_manifest(tmp_path, lambda d: d.pop("stages"))
        with pytest.raises(ManifestFormatError, match="missing keys"):
            load_manifest(path)

    def test_current_schema_round_trips(self, tmp_path):
        path = tmp_path / "ok.json"
        RunManifest(target="round-trip").write(path)
        manifest = load_manifest(path)
        assert manifest.schema_version == MANIFEST_SCHEMA_VERSION
        assert manifest.target == "round-trip"
